"""Shortest-path (travel-time) oracle with caching and query accounting.

The paper answers ``cost(u, v)`` queries with hub labeling [50] fronted by an
LRU cache [40] and reports the number of shortest-path queries as one of the
ablation metrics (Tables V and VI).  This module reproduces that interface:

* :class:`DistanceOracle` -- a facade over the pluggable routing backends of
  :mod:`repro.network.routing` (``dijkstra`` | ``alt`` | ``ch`` |
  ``hub_label``), fronted by an LRU pair cache.  ``cost(u, v)`` /
  ``path(u, v)`` answer point queries and :meth:`DistanceOracle.many_to_many`
  answers batched source x target tables (hub labels use a bucket join there
  instead of per-pair merges).
* :class:`QueryStatistics` -- counts logical queries, cache hits and the
  number of backend searches, so experiments report the same
  "#Shortest Path Queries" column as the paper *uniformly across backends*:
  ``queries`` counts logical demand and is independent of the backend, while
  ``searches`` / ``settled_nodes`` describe the work the backend did.
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass

from ..exceptions import NetworkError, UnreachableError
from .road_network import RoadNetwork
from .routing.backends import (
    BACKEND_NAMES,
    GraphSearchBackend,
    HubLabelBackend,
    RoutingBackend,
    RoutingData,
    csr_content,
    install_routing_data,
    make_backend,
    network_content,
    network_fingerprint,
    repair_routing_data,
    routing_data,
)

#: Recent routing states the repair layer keeps for exact-reversion swaps.
SNAPSHOT_CAPACITY = 4


@dataclass(frozen=True)
class RepairReport:
    """Outcome of one :meth:`DistanceOracle.repair` call.

    ``mode`` tells what actually happened: ``"repaired"`` (incremental
    re-contraction spliced into the held hierarchy), ``"snapshot"`` (the
    mutated network matched a cached routing state, swapped in without any
    preprocessing), ``"rebuilt"`` (the mutation set could not be absorbed
    incrementally and a full rebuild ran instead) or ``"noop"`` (nothing was
    stale).  The counters are only non-zero for ``"repaired"``.
    """

    mode: str
    seconds: float = 0.0
    nodes_recontracted: int = 0
    shortcuts_replaced: int = 0
    affected_fraction: float = 0.0

    @property
    def full_rebuild(self) -> bool:
        """True when the repair fell back to a full rebuild."""
        return self.mode == "rebuilt"


@dataclass
class QueryStatistics:
    """Counters describing how the oracle has been used."""

    #: Logical ``cost``/``path``/``many_to_many`` queries issued by callers.
    queries: int = 0
    #: Queries answered directly from the LRU pair cache.
    cache_hits: int = 0
    #: Backend searches actually executed (graph searches, CH queries or
    #: label merges, depending on the backend).
    searches: int = 0
    #: Total number of node settlements / label entries scanned across all
    #: searches (work proxy).
    settled_nodes: int = 0
    #: Backend-served queries answered by the Dijkstra fallback while the
    #: preprocessed structures were dirty (scenario engine; see
    #: :meth:`DistanceOracle.enable_fallback`).
    fallback_queries: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.queries = 0
        self.cache_hits = 0
        self.searches = 0
        self.settled_nodes = 0
        self.fallback_queries = 0

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain dictionary (for reporting)."""
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "searches": self.searches,
            "settled_nodes": self.settled_nodes,
            "fallback_queries": self.fallback_queries,
        }


class DistanceOracle:
    """Cached travel-time oracle over a :class:`RoadNetwork`.

    Parameters
    ----------
    network:
        The road network to query.
    cache_size:
        Maximum number of ``(source, target) -> cost`` entries kept in the
        LRU cache.  When a graph search terminates, every settled node is
        opportunistically cached for the same source, which amortises the
        cost of repeated queries from popular locations (vehicle positions);
        the preprocessed backends cache only the queried pair (their queries
        are cheap enough not to need the amortisation).
    backend:
        One of :data:`repro.network.routing.BACKEND_NAMES`.  ``dijkstra``
        searches the CSR graph per query; ``alt`` adds landmark potentials;
        ``ch`` preprocesses a contraction hierarchy and answers with
        bidirectional upward searches; ``hub_label`` additionally extracts
        hub labels and answers with sorted-label merges (the paper's setup).
        Preprocessing is shared between oracles over the same network.
    num_landmarks:
        Number of ALT landmarks.  Kept for backward compatibility: a positive
        value upgrades the ``dijkstra`` backend to ``alt``.
    seed:
        Seed for the landmark selection.
    record_repair_support:
        Record the witness-support index the incremental CH repair layer
        needs (adds ~6% build time and the support-index memory).  Static
        experiments that never mutate the network can pass ``False``;
        :meth:`repair` then always falls back to a full rebuild.  The
        preprocessed structures are shared per network, so the flag only
        takes effect for the oracle that builds them first.
    """

    def __init__(
        self,
        network: RoadNetwork,
        *,
        cache_size: int = 200_000,
        num_landmarks: int = 0,
        seed: int = 13,
        backend: str = "dijkstra",
        record_repair_support: bool = True,
    ) -> None:
        if cache_size < 0:
            raise NetworkError("cache_size must be non-negative")
        self._network = network
        self._cache_size = cache_size
        self._cache: OrderedDict[tuple[int, int], float] = OrderedDict()
        self.stats = QueryStatistics()
        self._requested_backend = backend
        self._num_landmarks = num_landmarks
        self._seed = seed
        self._record_repair_support = record_repair_support
        self._data = routing_data(
            network, record_repair_support=record_repair_support
        )
        self._backend = make_backend(
            backend, self._data, num_landmarks=num_landmarks, seed=seed
        )
        #: Fresh-CSR Dijkstra serving queries while the preprocessed
        #: structures are dirty (``None`` outside scenario fallback windows).
        self._fallback: GraphSearchBackend | None = None
        self._fallback_data = None
        #: Content-addressed LRU of recent routing states (see
        #: :meth:`repair`): edge-content signature -> RoutingData.
        self._snapshots: OrderedDict[tuple, object] = OrderedDict()
        #: Query-trace sampling interval (observability).  0 disables; the
        #: hot-path guard is a single falsy-int check so an untraced oracle
        #: pays no measurable per-query cost.  See :meth:`set_query_tracing`.
        self._trace_every = 0
        self._trace_countdown = 0
        self._trace_tracer: object | None = None

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @property
    def network(self) -> RoadNetwork:
        """The underlying road network."""
        return self._network

    @property
    def backend_name(self) -> str:
        """Name of the active routing backend."""
        return self._backend.name

    # ------------------------------------------------------------------ #
    # dynamic-world refresh (scenario engine)
    # ------------------------------------------------------------------ #
    @property
    def is_stale(self) -> bool:
        """True when the network mutated after the structures serving queries.

        While the Dijkstra fallback is active, staleness is judged against
        the fallback's CSR snapshot (the preprocessed structures are dirty by
        definition then, but queries are still answered exactly).
        """
        active = self._fallback_data if self._fallback is not None else self._data
        return active.fingerprint != network_fingerprint(self._network)

    @property
    def serving_fallback(self) -> bool:
        """True while queries are answered by the Dijkstra fallback."""
        return self._fallback is not None

    def rebuild(self) -> float:
        """Rebuild the routing structures against the current network.

        Drops the pair cache and the Dijkstra fallback, re-resolves the
        shared :func:`routing_data` (CSR now; hierarchy / labels are forced
        eagerly by the backend constructor so the rebuild cost is paid here,
        not smeared over the next queries) and returns the wall-clock seconds
        spent -- the scenario refresh policies account it as rebuild time.

        Exception-safe: the new structures (and the backend over them) are
        fully constructed before any held state is dropped, so a build that
        raises partway leaves the oracle serving its previous structures
        unchanged -- the caller may retry or enter the fallback.
        """
        start = time.perf_counter()
        self._adopt_data(
            routing_data(
                self._network,
                record_repair_support=self._record_repair_support,
            )
        )
        return time.perf_counter() - start

    def repair(
        self,
        mutated_edges: Sequence[tuple[int, int]] | None = None,
        *,
        max_affected_fraction: float = 1.0,
    ) -> RepairReport:
        """Follow network mutations incrementally instead of rebuilding.

        The repair layer tries, in order:

        1. **Snapshot swap** -- the mutated network's edge content is looked
           up in a small LRU of recent routing states (kept across repair
           calls).  Exact reversions -- a traffic wave receding, a closed
           road reopening at its recorded cost -- swap the cached CSR /
           hierarchy / labels back in O(E log E) signature time, with zero
           preprocessing.
        2. **Incremental CH repair** -- the mutated edge set (``mutated_edges``
           or, when ``None``, the network's own mutation journal since this
           oracle's snapshot) seeds an affected node set that is re-contracted
           in the frozen rank order and spliced into the held hierarchy (see
           :meth:`ContractionHierarchy.repair`); hub labels, when extracted,
           are re-derived from the repaired hierarchy.
        3. **Full rebuild** -- when the journal does not cover the mutations,
           the backend holds no hierarchy (``dijkstra``/``alt``), the node
           set changed, or the affected set exceeds ``max_affected_fraction``
           of all nodes.

        Like :meth:`rebuild` this drops the pair cache and the Dijkstra
        fallback, and the resulting state is installed in the shared
        per-network cache (later oracles and rebuilds resolve to it).  The
        pre-mutation state itself survives as a copy-on-write snapshot, so
        repeated back-and-forth bursts (rush-hour waves rolling in and out)
        settle into pure swaps.  Returns a :class:`RepairReport` describing
        what happened.
        """
        start = time.perf_counter()
        network = self._network
        data = self._data
        if self._fallback is None and not self.is_stale:
            return RepairReport(mode="noop")
        # 1. Exact-reversion lookup.  The pre-mutation state is recoverable
        # from the held CSR (the network itself has already moved on), and
        # is worth caching only when expensive preprocessing hangs off it.
        now_key = network_content(network)
        if data.has_hierarchy:
            self._remember_snapshot(csr_content(data.csr), data)
        hit = self._snapshots.get(now_key)
        if hit is not None:
            self._snapshots.move_to_end(now_key)
            install_routing_data(network, hit)
            self._adopt_data(hit)
            return RepairReport(
                mode="snapshot", seconds=time.perf_counter() - start
            )
        # 2. Incremental repair of the held hierarchy.  The repaired state
        # is a copy-on-write fork, so ``data`` -- and its snapshot entry
        # taken above -- stays valid for the pre-mutation network.
        if mutated_edges is None:
            mutated_edges = network.edge_mutations_since(data.fingerprint[2])
        repaired = None
        if mutated_edges is not None:
            repaired = repair_routing_data(
                network, data, mutated_edges, max_fraction=max_affected_fraction
            )
        if repaired is None:
            # 3. Not absorbable: full rebuild; the fresh state is cached for
            # future reversions.
            self._adopt_data(
                routing_data(
                    network, record_repair_support=self._record_repair_support
                )
            )
            self._remember_snapshot(now_key, self._data)
            return RepairReport(
                mode="rebuilt", seconds=time.perf_counter() - start
            )
        new_data, stats = repaired
        self._adopt_data(new_data)
        self._remember_snapshot(now_key, new_data)
        return RepairReport(
            mode="repaired",
            seconds=time.perf_counter() - start,
            nodes_recontracted=stats.nodes_recontracted,
            shortcuts_replaced=stats.shortcuts_replaced,
            affected_fraction=stats.affected_fraction,
        )

    def _adopt_data(self, data: RoutingData) -> None:
        """Serve queries from ``data``: drop cache + fallback, rebind backend.

        The backend is constructed *before* any held state is dropped: a
        build that raises partway (out of memory, an injected fault) must
        leave the oracle consistent on its previous structures, never
        half-initialised with a cleared cache and no backend.
        """
        backend = make_backend(
            self._requested_backend,
            data,
            num_landmarks=self._num_landmarks,
            seed=self._seed,
        )
        self._cache.clear()
        self._fallback = None
        self._fallback_data = None
        self._data = data
        self._backend = backend

    def _remember_snapshot(self, key: tuple, data: RoutingData) -> None:
        self._snapshots[key] = data
        self._snapshots.move_to_end(key)
        while len(self._snapshots) > SNAPSHOT_CAPACITY:
            self._snapshots.popitem(last=False)

    def enable_fallback(self) -> None:
        """Serve queries exactly via a fresh-CSR Dijkstra, deferring rebuild.

        Compiling the CSR arrays is O(V + E) and orders of magnitude cheaper
        than re-contracting the hierarchy or re-extracting labels, so a
        refresh policy can make a mutation burst *consistent* immediately and
        schedule the expensive rebuild for later.  Queries served this way
        are counted in ``stats.fallback_queries``.  A no-op when the current
        fallback already matches the network.
        """
        data = routing_data(
            self._network, record_repair_support=self._record_repair_support
        )
        if self._fallback is not None and self._fallback_data is data:
            return
        self._cache.clear()
        self._fallback_data = data
        self._fallback = GraphSearchBackend(data)

    def _active(self) -> tuple[RoutingData, "RoutingBackend"]:
        """The ``(routing_data, backend)`` pair answering queries right now."""
        if self._fallback is not None:
            return self._fallback_data, self._fallback
        return self._data, self._backend

    def set_query_tracing(self, tracer: object | None, every: int = 100) -> None:
        """Sample every ``every``-th *computed* point query into ``tracer``.

        Each sampled query becomes an ``oracle.query`` trace event tagged
        with the serving backend, the settled-node work it caused and its
        wall-clock latency; batched ``many_to_many`` fills additionally
        record one ``oracle.many_to_many`` event per backend batch (those
        are coarse enough not to need sampling).  Cache hits are never
        sampled -- the point is backend latency, not dict lookups.

        ``tracer`` is any object with an ``event(name, *, duration, **tags)``
        method (see :class:`repro.observability.SpanTracer`); ``None``,
        ``every=0`` or a disabled tracer turns sampling off.
        """
        if every < 0:
            raise NetworkError("query-trace sampling interval must be non-negative")
        if tracer is None or every == 0 or not getattr(tracer, "enabled", False):
            self._trace_every = 0
            self._trace_countdown = 0
            self._trace_tracer = None
            return
        self._trace_every = every
        self._trace_countdown = every
        self._trace_tracer = tracer

    def cost(self, source: int, target: int) -> float:
        """Minimum travel time from ``source`` to ``target`` in seconds.

        Returns ``math.inf`` when the target is unreachable (the feasibility
        checks interpret an infinite cost as "not shareable / not insertable"
        rather than raising).
        """
        self.stats.queries += 1
        if source == target:
            self._active()[0].csr.require_index(source)
            return 0.0
        cached = self._cache_get((source, target))
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        return self._compute(source, target)

    def path(self, source: int, target: int) -> list[int]:
        """Sequence of nodes of a shortest path from ``source`` to ``target``.

        Answered natively by every backend: the graph-search backends keep
        parent pointers (with ALT potentials when the ``alt`` backend is
        active), while ``ch`` and ``hub_label`` extract the meeting node of
        the bidirectional upward query and unpack the shortcut edges of the
        resulting up-down path -- no fallback graph search.  Raises
        :class:`UnreachableError` if no path exists.
        """
        self.stats.queries += 1
        data, backend = self._active()
        csr = data.csr
        source_index = csr.require_index(source)
        target_index = csr.require_index(target)
        if source == target:
            return [source]
        node_ids = csr.node_ids
        self.stats.searches += 1
        if backend is self._fallback:
            self.stats.fallback_queries += 1
        if isinstance(backend, GraphSearchBackend):
            distance, settled, parents = backend.search(
                source_index, target_index, want_parents=True
            )
            self.stats.settled_nodes += len(settled)
            self._cache_settled(source, settled)
            if math.isinf(distance):
                raise UnreachableError(f"node {target} is unreachable from {source}")
            indices = [target_index]
            while indices[-1] != source_index:
                indices.append(parents[indices[-1]])
            indices.reverse()
            return [node_ids[index] for index in indices]
        indices, distance, work = backend.path(source_index, target_index)
        self.stats.settled_nodes += work
        self._cache_put((source, target), distance)
        if indices is None:
            raise UnreachableError(f"node {target} is unreachable from {source}")
        return [node_ids[index] for index in indices]

    def many_to_many(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> dict[tuple[int, int], float]:
        """Batched ``cost`` table over ``sources`` x ``targets``.

        Semantically identical to a nested ``cost`` loop -- every (deduped)
        pair counts as one logical query and cached pairs count as cache
        hits -- but cache misses are answered in bulk: the ``hub_label``
        backend runs one bucket join over all labels, ``ch`` loops its
        bidirectional queries, and the graph-search backends run one
        multi-target Dijkstra per distinct source.  Returns a dictionary
        mapping ``(source, target)`` to travel time (``math.inf`` when
        unreachable).
        """
        sources = list(dict.fromkeys(sources))
        targets = list(dict.fromkeys(targets))
        result: dict[tuple[int, int], float] = {}
        missing: list[tuple[int, int]] = []
        for source in sources:
            for target in targets:
                self.stats.queries += 1
                if source == target:
                    result[(source, target)] = 0.0
                    continue
                cached = self._cache_get((source, target))
                if cached is not None:
                    self.stats.cache_hits += 1
                    result[(source, target)] = cached
                else:
                    missing.append((source, target))
        if missing:
            self._compute_many(missing, result)
        return result

    def prefetch(self, sources: Sequence[int], targets: Sequence[int]) -> None:
        """Warm the pair cache for ``sources`` x ``targets`` in bulk.

        Unlike :meth:`many_to_many` this is an optimisation hint, not caller
        demand: the backend work is batched exactly the same way (and counted
        in ``searches`` / ``settled_nodes``), but the ``queries`` /
        ``cache_hits`` counters are left untouched so the paper's
        "#Shortest Path Queries" column keeps reflecting the *logical* query
        pattern of the dispatch algorithms, independent of cache warming.
        """
        if self._cache_size == 0:
            return
        missing = [
            (source, target)
            for source in dict.fromkeys(sources)
            for target in dict.fromkeys(targets)
            if source != target and self._cache_get((source, target)) is None
        ]
        if missing:
            self._compute_many(missing, {})

    def route_cost(self, nodes: list[int]) -> float:
        """Total travel time of the node sequence ``nodes`` (consecutive legs)."""
        total = 0.0
        for u, v in zip(nodes, nodes[1:]):
            total += self.cost(u, v)
        return total

    def clear_cache(self) -> None:
        """Drop every cached distance."""
        self._cache.clear()

    @property
    def cache_len(self) -> int:
        """Current number of cached ``(source, target)`` pairs."""
        return len(self._cache)

    def estimated_memory_bytes(self) -> int:
        """Rough memory footprint of the cache plus preprocessed structures."""
        # Each cache entry: two ints + a float + dict overhead, ~100 bytes is
        # a fair order-of-magnitude figure for CPython.
        preprocessed = getattr(self._backend, "estimated_memory_bytes", lambda: 0)()
        return 100 * len(self._cache) + preprocessed

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _cache_get(self, key: tuple[int, int]) -> float | None:
        if self._cache_size == 0:
            return None
        value = self._cache.get(key)
        if value is not None:
            self._cache.move_to_end(key)
        return value

    def _cache_put(self, key: tuple[int, int], value: float) -> None:
        if self._cache_size == 0:
            return
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)

    def _cache_settled(
        self, anchor: int, settled: dict[int, float], *, reverse: bool = False
    ) -> None:
        node_ids = self._active()[0].csr.node_ids
        if reverse:
            for index, distance in settled.items():
                self._cache_put((node_ids[index], anchor), distance)
        else:
            for index, distance in settled.items():
                self._cache_put((anchor, node_ids[index]), distance)

    def _compute(self, source: int, target: int) -> float:
        if self._trace_every:
            return self._compute_sampled(source, target)
        data, backend = self._active()
        csr = data.csr
        source_index = csr.require_index(source)
        target_index = csr.require_index(target)
        self.stats.searches += 1
        if backend is self._fallback:
            self.stats.fallback_queries += 1
        if isinstance(backend, GraphSearchBackend):
            distance, settled, _ = backend.search(source_index, target_index)
            self.stats.settled_nodes += len(settled)
            self._cache_settled(source, settled)
            if math.isinf(distance):
                self._cache_put((source, target), math.inf)
        else:
            distance, work = backend.one_to_one(source_index, target_index)
            self.stats.settled_nodes += work
            self._cache_put((source, target), distance)
        return distance

    def _compute_sampled(self, source: int, target: int) -> float:
        """Traced variant of :meth:`_compute` (``_trace_every`` is non-zero).

        Reuses :meth:`_compute` for the actual work by temporarily zeroing
        the sampling flag, so the two paths cannot drift apart; only every
        ``_trace_every``-th call pays for the two ``perf_counter`` reads.
        """
        every = self._trace_every
        self._trace_countdown -= 1
        if self._trace_countdown > 0:
            self._trace_every = 0
            try:
                return self._compute(source, target)
            finally:
                self._trace_every = every
        self._trace_countdown = every
        settled_before = self.stats.settled_nodes
        self._trace_every = 0
        start = time.perf_counter()
        try:
            distance = self._compute(source, target)
        finally:
            self._trace_every = every
        duration = time.perf_counter() - start
        tracer = self._trace_tracer
        if tracer is not None:
            tracer.event(  # type: ignore[attr-defined]
                "oracle.query",
                duration=duration,
                backend=self._active()[1].name,
                settled=self.stats.settled_nodes - settled_before,
                fallback=self._fallback is not None,
            )
        return distance

    def _compute_many(
        self,
        missing: list[tuple[int, int]],
        result: dict[tuple[int, int], float],
    ) -> None:
        if self._trace_every:
            return self._compute_many_traced(missing, result)
        data, backend = self._active()
        csr = data.csr
        if backend is self._fallback:
            self.stats.fallback_queries += len(missing)
        if isinstance(backend, GraphSearchBackend):
            # One multi-target search per group; searching from the smaller
            # side (reverse Dijkstra when one target serves many sources,
            # e.g. candidate vehicles converging on one pick-up) minimises
            # the number of searches.
            by_source: dict[int, list[int]] = {}
            by_target: dict[int, list[int]] = {}
            for source, target in missing:
                by_source.setdefault(source, []).append(target)
                by_target.setdefault(target, []).append(source)
            reverse = len(by_target) < len(by_source)
            groups = by_target if reverse else by_source
            for anchor, others in groups.items():
                anchor_index = csr.require_index(anchor)
                index_of_other = {csr.require_index(o): o for o in others}
                self.stats.searches += 1
                distances, settled = backend.search_multi(
                    anchor_index, set(index_of_other), reverse=reverse
                )
                self.stats.settled_nodes += len(settled)
                self._cache_settled(anchor, settled, reverse=reverse)
                for other_index, other in index_of_other.items():
                    distance = distances[other_index]
                    key = (other, anchor) if reverse else (anchor, other)
                    result[key] = distance
                    if math.isinf(distance):
                        self._cache_put(key, math.inf)
            return
        if isinstance(backend, HubLabelBackend):
            # One bucket join over all labels involved.  The join naturally
            # produces the dense cross product, so every computed entry goes
            # into the cache -- not just the requested pairs.
            source_indices = {csr.require_index(s) for s, _ in missing}
            target_indices = {csr.require_index(t) for _, t in missing}
            table, work = backend.many_to_many(
                sorted(source_indices), sorted(target_indices)
            )
            self.stats.searches += len(missing)
            self.stats.settled_nodes += work
            node_ids = csr.node_ids
            for (source_index, target_index), distance in table.items():
                if source_index != target_index:
                    self._cache_put(
                        (node_ids[source_index], node_ids[target_index]), distance
                    )
            for source, target in missing:
                result[(source, target)] = table[
                    (csr.index_of[source], csr.index_of[target])
                ]
            return
        # CH: the backend batches over exactly the requested pairs (its
        # many_to_many takes pairs, not a dense source x target product).
        index_pairs = [
            (csr.require_index(s), csr.require_index(t)) for s, t in missing
        ]
        table, work = backend.many_to_many(index_pairs)
        self.stats.searches += len(missing)
        self.stats.settled_nodes += work
        for (source, target), index_pair in zip(missing, index_pairs):
            distance = table[index_pair]
            result[(source, target)] = distance
            self._cache_put((source, target), distance)

    def _compute_many_traced(
        self,
        missing: list[tuple[int, int]],
        result: dict[tuple[int, int], float],
    ) -> None:
        """Traced variant of :meth:`_compute_many`: one event per batch fill.

        Batched fills are orders of magnitude rarer than point queries, so
        every one is recorded (no sampling).  The same zero-the-flag trick
        as :meth:`_compute_sampled` reuses the plain implementation.
        """
        every = self._trace_every
        settled_before = self.stats.settled_nodes
        self._trace_every = 0
        start = time.perf_counter()
        try:
            self._compute_many(missing, result)
        finally:
            self._trace_every = every
        duration = time.perf_counter() - start
        tracer = self._trace_tracer
        if tracer is not None:
            tracer.event(  # type: ignore[attr-defined]
                "oracle.many_to_many",
                duration=duration,
                backend=self._active()[1].name,
                pairs=len(missing),
                settled=self.stats.settled_nodes - settled_before,
                fallback=self._fallback is not None,
            )


__all__ = ["DistanceOracle", "QueryStatistics", "RepairReport", "BACKEND_NAMES"]
