"""Retry with exponential backoff, jitter and a deadline budget.

Backoff pauses are *virtual*: they are drawn, recorded and charged against
the deadline budget, but never slept.  Sleeping inside the simulator would
slow chaos runs down for no benefit and -- worse -- couple breaker decisions
to wall-clock scheduling noise; charging virtual seconds keeps retry
behaviour reproducible from the RNG seed alone.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass
from random import Random
from typing import Any, TypeVar

from ..exceptions import ConfigurationError, ReproError

T = TypeVar("T")


@dataclass(frozen=True)
class RetryOutcome:
    """Accounting of one retried operation that eventually succeeded."""

    #: Attempts performed (1 = first try succeeded).
    attempts: int
    #: Retries performed (``attempts - 1``).
    retries: int
    #: Total virtual backoff charged between attempts, in seconds.
    backoff_seconds: float
    #: Real operation time plus virtual backoff, in seconds.
    seconds: float


class RetryPolicy:
    """Exponential backoff with jitter under a deadline budget.

    Retries only on :class:`~repro.exceptions.ReproError` (injected faults
    and library errors); anything else -- a genuine bug -- propagates
    immediately.  When attempts or the deadline budget run out, the last
    error is re-raised wrapped in the caller-provided typed error
    (:class:`~repro.exceptions.OracleBuildError` /
    :class:`~repro.exceptions.OracleRepairError`).
    """

    def __init__(
        self,
        *,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        multiplier: float = 2.0,
        jitter: float = 0.25,
        deadline: float = 30.0,
    ) -> None:
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if base_delay < 0 or multiplier < 1.0 or deadline <= 0:
            raise ConfigurationError(
                "base_delay must be >= 0, multiplier >= 1 and deadline > 0"
            )
        if not 0.0 <= jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.jitter = jitter
        self.deadline = deadline

    def call(
        self,
        op: Callable[[], T],
        *,
        rng: Random,
        error_type: type[ReproError],
        describe: str,
        on_retry: Callable[[int, float, ReproError], Any] | None = None,
    ) -> tuple[T, RetryOutcome]:
        """Run ``op`` until it succeeds, retry budget allowing.

        ``on_retry(attempt, pause, error)`` fires before each retry (for
        event recording).  Returns ``(result, outcome)`` on success; raises
        ``error_type`` chained to the last failure when attempts or the
        deadline budget are exhausted.
        """
        start = time.perf_counter()
        backoff_total = 0.0
        delay = self.base_delay
        for attempt in range(1, self.max_attempts + 1):
            try:
                result = op()
            except ReproError as error:
                pause = delay
                if self.jitter > 0:
                    pause *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
                elapsed = time.perf_counter() - start + backoff_total
                if attempt >= self.max_attempts:
                    raise error_type(
                        f"{describe} failed after {attempt} attempts: {error}"
                    ) from error
                if elapsed + pause > self.deadline:
                    raise error_type(
                        f"{describe} exceeded its {self.deadline:.3f}s deadline "
                        f"budget after {attempt} attempts: {error}"
                    ) from error
                backoff_total += pause
                if on_retry is not None:
                    on_retry(attempt, pause, error)
                delay *= self.multiplier
            else:
                return result, RetryOutcome(
                    attempts=attempt,
                    retries=attempt - 1,
                    backoff_seconds=backoff_total,
                    seconds=time.perf_counter() - start + backoff_total,
                )
        raise AssertionError("unreachable: the loop returns or raises")


__all__ = ["RetryOutcome", "RetryPolicy"]
