"""Sampled invariant probes: oracle costs vs a fresh Dijkstra reference.

Each batch, ``k`` random node pairs are costed through the serving oracle
and through a cache-less Dijkstra oracle compiled from the *current* network
(always exact, whatever state the preprocessed structures are in).  Any
mismatch means the oracle is silently wrong -- a corrupted snapshot, a buggy
repair splice -- and triggers the self-healing rung of the degradation
ladder.  The probe pair sampler is seeded, so two runs with the same
configuration probe the same pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random

from ..network.road_network import RoadNetwork
from ..network.shortest_path import DistanceOracle


@dataclass(frozen=True)
class ProbeFailure:
    """One probe pair whose oracle cost deviated from fresh Dijkstra."""

    source: int
    target: int
    got: float
    want: float


class InvariantProbe:
    """Seeded sampler comparing oracle costs against a Dijkstra reference."""

    def __init__(
        self, *, pairs: int = 4, seed: int = 23, tolerance: float = 1e-6
    ) -> None:
        self.pairs = max(int(pairs), 0)
        self.seed = seed
        self.tolerance = tolerance
        self.checks = 0
        self.reset()

    def reset(self) -> None:
        """Rewind the pair sampler to the seed state (one stream per run)."""
        self._rng = Random(f"{self.seed}:probe")
        self.checks = 0

    def check(
        self, network: RoadNetwork, oracle: DistanceOracle
    ) -> list[ProbeFailure]:
        """Probe ``pairs`` random node pairs; return the mismatches.

        The reference oracle is rebuilt from the current network on every
        check: probing must stay exact even while the serving oracle's
        preprocessed structures are dirty or corrupted.
        """
        if self.pairs == 0:
            return []
        nodes = sorted(network.nodes())
        if len(nodes) < 2:
            return []
        reference = DistanceOracle(network, cache_size=0, backend="dijkstra")
        failures: list[ProbeFailure] = []
        tolerance = self.tolerance
        for _ in range(self.pairs):
            source, target = self._rng.sample(nodes, 2)
            self.checks += 1
            want = reference.cost(source, target)
            got = oracle.cost(source, target)
            if math.isinf(want) and math.isinf(got):
                continue
            if math.isinf(want) or math.isinf(got):
                failures.append(ProbeFailure(source, target, got, want))
                continue
            if abs(got - want) > tolerance * max(1.0, abs(want)):
                failures.append(ProbeFailure(source, target, got, want))
        return failures


__all__ = ["InvariantProbe", "ProbeFailure"]
