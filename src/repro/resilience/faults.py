"""Seeded fault injection for the distance oracle.

:class:`FaultInjector` turns a :class:`~repro.config.ChaosConfig` into a
deterministic fault sequence: every injection decision is drawn from RNG
streams seeded by strings derived from ``config.seed`` (CPython seeds string
inputs through SHA-512, so the streams are reproducible across processes and
platforms).  Faults and latency spikes draw from *separate* streams, so
enabling spikes never shifts which rebuild/repair calls fail.

:class:`ChaosOracle` is a :class:`~repro.network.shortest_path.DistanceOracle`
whose refresh and query seams consult the injector:

* ``rebuild`` / ``repair`` raise :class:`~repro.exceptions.InjectedFaultError`
  *before* doing any work when the injector fires -- modelling a backend
  build that crashes, while exercising the oracle's exception-safety (the
  previous structures keep serving).
* A *successful* refresh may leave the oracle silently corrupted: query
  results are scaled by ``corruption_factor`` (emulating a snapshot whose
  weights were perturbed) until :meth:`ChaosOracle.heal` clears it.  The
  scaling is applied at the query layer on every finite nonzero cost, so any
  invariant probe pair detects it.
* ``cost`` / ``many_to_many`` draw latency spikes, accumulated as *virtual*
  seconds the simulator charges against its per-batch time budget.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Any
from random import Random

from ..config import ChaosConfig
from ..exceptions import InjectedFaultError
from ..network.road_network import RoadNetwork
from ..network.shortest_path import DistanceOracle, RepairReport


class FaultInjector:
    """Deterministic per-operation fault decisions from a seeded config."""

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self.reset()

    def reset(self) -> None:
        """Rewind every stream and counter to the configured seed state."""
        seed = self.config.seed
        self._fault_rng = Random(f"{seed}:faults")
        self._spike_rng = Random(f"{seed}:spikes")
        #: ``(operation, op_index)`` per injected refresh fault, in order --
        #: the chaos determinism contract is that two runs with the same
        #: config produce identical logs.
        self.fault_log: list[tuple[str, int]] = []
        self.faults_injected = 0
        self.faults_by_kind = {
            "rebuild": 0, "repair": 0, "corruption": 0, "spike": 0,
        }
        self._op_index = 0
        #: Virtual latency accrued since the last drain, in seconds.
        self.pending_latency = 0.0
        self.total_latency = 0.0

    # ------------------------------------------------------------------ #
    def _draw(self, kind: str, rate: float) -> bool:
        self._op_index += 1
        if self._fault_rng.random() >= rate:
            return False
        self.fault_log.append((kind, self._op_index))
        self.faults_injected += 1
        self.faults_by_kind[kind] += 1
        return True

    def fail_rebuild(self) -> bool:
        """Decide whether the next rebuild raises."""
        return self._draw("rebuild", self.config.rebuild_failure_rate)

    def fail_repair(self) -> bool:
        """Decide whether the next incremental repair raises."""
        return self._draw("repair", self.config.repair_failure_rate)

    def corrupt_refresh(self) -> bool:
        """Decide whether a successful refresh leaves silent corruption."""
        return self._draw("corruption", self.config.corruption_rate)

    def query_spike(self) -> float:
        """Virtual latency of the next query (0.0 when no spike fires)."""
        rate = self.config.query_spike_rate
        if rate <= 0:
            return 0.0
        if self._spike_rng.random() >= rate:
            return 0.0
        seconds = self.config.spike_seconds
        self.faults_injected += 1
        self.faults_by_kind["spike"] += 1
        self.pending_latency += seconds
        self.total_latency += seconds
        return seconds

    def drain_latency(self) -> float:
        """Return and clear the virtual latency accrued since the last drain."""
        seconds = self.pending_latency
        self.pending_latency = 0.0
        return seconds


class ChaosOracle(DistanceOracle):
    """Distance oracle whose refresh/query seams inject configured faults.

    With a never-firing injector (all rates zero) this is behaviourally
    identical to a plain :class:`DistanceOracle`.  The internal pair cache
    always stores *exact* costs; corruption is applied to returned values
    only, so :meth:`heal` restores exactness instantly without flushing.
    """

    def __init__(
        self, network: RoadNetwork, *, injector: FaultInjector, **kwargs: Any
    ) -> None:
        super().__init__(network, **kwargs)
        self.injector = injector
        #: Multiplier applied to query results while corrupted (``None`` =
        #: healthy).
        self._corruption: float | None = None

    @property
    def corrupted(self) -> bool:
        """True while query results are being silently perturbed."""
        return self._corruption is not None

    def heal(self) -> None:
        """Clear injected corruption (the self-healing rung calls this)."""
        self._corruption = None

    # ------------------------------------------------------------------ #
    # refresh seams
    # ------------------------------------------------------------------ #
    def rebuild(self) -> float:
        injector = self.injector
        if injector.fail_rebuild():
            raise InjectedFaultError("injected fault: backend rebuild crashed")
        seconds = super().rebuild()
        if injector.corrupt_refresh():
            self._corruption = injector.config.corruption_factor
        return seconds

    def repair(
        self,
        mutated_edges: Sequence[tuple[int, int]] | None = None,
        *,
        max_affected_fraction: float = 1.0,
    ) -> RepairReport:
        injector = self.injector
        if injector.fail_repair():
            raise InjectedFaultError("injected fault: incremental repair crashed")
        report = super().repair(
            mutated_edges, max_affected_fraction=max_affected_fraction
        )
        if report.mode != "noop" and injector.corrupt_refresh():
            self._corruption = injector.config.corruption_factor
        return report

    # ------------------------------------------------------------------ #
    # query seams
    # ------------------------------------------------------------------ #
    def cost(self, source: int, target: int) -> float:
        self.injector.query_spike()
        value = super().cost(source, target)
        scale = self._corruption
        if scale is not None and value > 0.0 and math.isfinite(value):
            return value * scale
        return value

    def many_to_many(
        self, sources: Sequence[int], targets: Sequence[int]
    ) -> dict[tuple[int, int], float]:
        self.injector.query_spike()
        table = super().many_to_many(sources, targets)
        scale = self._corruption
        if scale is None:
            return table
        return {
            pair: value * scale
            if value > 0.0 and math.isfinite(value)
            else value
            for pair, value in table.items()
        }


__all__ = ["ChaosOracle", "FaultInjector"]
