"""Resilience layer: fault injection, retry/backoff and graceful degradation.

The dynamic-world refresh paths (CH rebuild, incremental repair, snapshot
swap, Dijkstra fallback) all assume they succeed.  This package makes the
oracle/dispatch pipeline survive when they do not:

* :mod:`~repro.resilience.faults` -- a seeded :class:`FaultInjector` driven
  by :class:`~repro.config.ChaosConfig` plus :class:`ChaosOracle`, a
  :class:`~repro.network.shortest_path.DistanceOracle` whose rebuild/repair/
  query seams inject rebuild exceptions, repair failures, silent corruption
  and query latency spikes -- deterministically, from per-operation RNG
  streams.
* :mod:`~repro.resilience.retry` -- retry with exponential backoff + jitter
  and a deadline budget, raising typed
  :class:`~repro.exceptions.OracleBuildError` /
  :class:`~repro.exceptions.OracleRepairError` when exhausted.
* :mod:`~repro.resilience.degrade` -- per-oracle and per-dispatcher circuit
  breakers and the degradation ladder orchestrated by
  :class:`ResilienceManager`: failed repairs trip to eager rebuild, failed
  rebuilds trip to the exact fresh-CSR Dijkstra fallback, and batches that
  overrun their time budget degrade the dispatcher until a recovery probe
  closes the breaker.
* :mod:`~repro.resilience.probes` -- sampled oracle-vs-Dijkstra invariant
  probes detecting silent corruption and triggering self-healing rebuilds.

The invariant the ladder enforces: under any injected fault sequence the
simulation completes, every accepted assignment's costs are exact at
dispatch time, and the recovery latency is reported in the metrics.
"""

from __future__ import annotations

from .degrade import BreakerState, CircuitBreaker, ResilienceManager, ResilienceStats
from .faults import ChaosOracle, FaultInjector
from .probes import InvariantProbe, ProbeFailure
from .retry import RetryOutcome, RetryPolicy

__all__ = [
    "BreakerState",
    "ChaosOracle",
    "CircuitBreaker",
    "FaultInjector",
    "InvariantProbe",
    "ProbeFailure",
    "ResilienceManager",
    "ResilienceStats",
    "RetryOutcome",
    "RetryPolicy",
]
