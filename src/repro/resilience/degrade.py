"""Circuit breakers and the degradation ladder.

The :class:`ResilienceManager` orchestrates two breakers:

* **Oracle breaker** -- guards the refresh path.  Repeated repair failures
  trip to an eager rebuild; a rebuild whose retry budget is exhausted counts
  a breaker failure and drops the oracle onto its exact fresh-CSR Dijkstra
  fallback (correctness is never traded away -- the fallback is exact, just
  slower).  While the breaker is open, refresh requests short-circuit to the
  fallback; after ``recovery_interval`` batches a half-open probe attempts
  one full rebuild and closes the breaker on success.
* **Dispatch breaker** -- guards the batch time budget.  A dispatch batch
  whose charged time (injected virtual latency, plus real wall-clock when
  configured) overruns the budget counts a failure; ``breaker_threshold``
  consecutive overruns trip the breaker and subsequent batches run a
  degraded dispatcher (greedy linear insertion, no clique enumeration)
  until a half-open probe batch finishes inside the budget again.

Sampled invariant probes (see :mod:`~repro.resilience.probes`) run before
every dispatch: a mismatch against fresh Dijkstra triggers the self-healing
rung (heal + rebuild, then the exact fallback as last resort), so dispatch
always prices insertions on a probe-verified oracle.
"""

from __future__ import annotations

import enum
import math
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any
from random import Random

from ..config import ChaosConfig, ResilienceConfig
from ..dispatch.base import Assignment, Dispatcher
from ..dispatch.prunegdp import PruneGDPDispatcher
from ..exceptions import (
    ConfigurationError,
    OracleBuildError,
    OracleRepairError,
    ReproError,
    ResilienceError,
)
from ..network.road_network import RoadNetwork
from ..network.shortest_path import DistanceOracle, RepairReport
from ..observability.trace import get_tracer
from .faults import ChaosOracle, FaultInjector
from .probes import InvariantProbe
from .retry import RetryPolicy

#: Event-kind strings emitted through the recorder (they match the values of
#: the corresponding :class:`repro.simulation.events.EventKind` members; the
#: resilience layer deliberately does not import the simulation package).
EVENT_FAULT_RETRY = "oracle_retry"
EVENT_BREAKER_OPENED = "breaker_opened"
EVENT_BREAKER_CLOSED = "breaker_closed"
EVENT_DISPATCH_DEGRADED = "dispatch_degraded"
EVENT_PROBE_FAILED = "probe_failed"
EVENT_SELF_HEALED = "oracle_self_healed"

#: ``subject`` values of breaker events: which breaker transitioned.
ORACLE_BREAKER = 0
DISPATCH_BREAKER = 1


class BreakerState(enum.Enum):
    """Classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with batch-granular recovery probing.

    Time is measured in *batches*, not wall-clock: :meth:`tick` is called
    once per batch while open and moves the breaker to half-open after
    ``recovery_interval`` ticks.  A success in half-open closes it; a
    failure re-opens it (counted as another trip).
    """

    def __init__(
        self, *, failure_threshold: int = 2, recovery_interval: int = 2
    ) -> None:
        if failure_threshold < 1 or recovery_interval < 1:
            raise ConfigurationError(
                "failure_threshold and recovery_interval must be at least 1"
            )
        self.failure_threshold = failure_threshold
        self.recovery_interval = recovery_interval
        self.state = BreakerState.CLOSED
        self.trips = 0
        self._consecutive_failures = 0
        self._cooldown = 0

    def record_failure(self) -> bool:
        """Count one failure; returns True when this failure opens the breaker."""
        self._consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN or (
            self.state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self._cooldown = self.recovery_interval
            self.trips += 1
            return True
        return False

    def record_success(self) -> bool:
        """Count one success; returns True when it closed an open breaker."""
        self._consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self.state = BreakerState.CLOSED
            return True
        return False

    def tick(self) -> bool:
        """Advance one batch while open; True when now half-open (probe due)."""
        if self.state is not BreakerState.OPEN:
            return False
        self._cooldown -= 1
        if self._cooldown <= 0:
            self.state = BreakerState.HALF_OPEN
            return True
        return False


@dataclass
class ResilienceStats:
    """Counters the manager accumulates over one run."""

    retries: int = 0
    degraded_batches: int = 0
    batch_overruns: int = 0
    probe_failures: int = 0
    self_heals: int = 0
    fallback_activations: int = 0
    #: Wall-clock seconds spent inside failure handling: retry backoff
    #: excluded (virtual), rebuild-after-failure, healing and recovery
    #: probes included -- the "recovery latency" the benchmarks report.
    recovery_seconds: float = 0.0
    #: Per-heal recovery latencies (probe failure detected -> exact again).
    heal_seconds: list[float] = field(default_factory=list)


class ResilienceManager:
    """Threads fault injection, retries, breakers and probes through a run.

    The manager is engine-agnostic: it never imports the simulator.  The
    simulator attaches an event recorder via :meth:`begin_run` and calls the
    hook methods from its batch loop; the refresh policies route their
    rebuild/repair calls through :meth:`guarded_rebuild` /
    :meth:`guarded_repair` when a manager is attached to them.
    """

    def __init__(
        self,
        *,
        config: ResilienceConfig | None = None,
        chaos: ChaosConfig | None = None,
        degraded_dispatcher: Dispatcher | None = None,
    ) -> None:
        self.config = config if config is not None else ResilienceConfig()
        self.chaos = chaos
        self.injector = FaultInjector(chaos) if chaos is not None else None
        self.retry = RetryPolicy(
            max_attempts=self.config.max_attempts,
            base_delay=self.config.backoff_base,
            multiplier=self.config.backoff_multiplier,
            jitter=self.config.backoff_jitter,
            deadline=self.config.retry_deadline,
        )
        #: The degraded rung of the dispatcher ladder: greedy linear
        #: insertion over few candidates, batch semantics (unassigned
        #: requests stay pending instead of being rejected outright).
        self.degraded_dispatcher = (
            degraded_dispatcher
            if degraded_dispatcher is not None
            else PruneGDPDispatcher(max_candidates=8, reject_unassigned=False)
        )
        self.probe = InvariantProbe(
            pairs=self.config.probe_pairs, seed=self.config.probe_seed
        )
        self.oracle_breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            recovery_interval=self.config.recovery_interval,
        )
        self.dispatch_breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            recovery_interval=self.config.recovery_interval,
        )
        self.stats = ResilienceStats()
        self._jitter_rng = Random(f"{self.config.probe_seed}:jitter")
        self._recorder: Callable[[float, str, int, int | None], None] | None = None
        self._now = 0.0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def make_oracle(self, network: RoadNetwork, **kwargs: Any) -> DistanceOracle:
        """A chaos oracle when fault injection is configured, plain otherwise."""
        if self.injector is None:
            return DistanceOracle(network, **kwargs)
        return ChaosOracle(network, injector=self.injector, **kwargs)

    def begin_run(
        self,
        recorder: Callable[[float, str, int, int | None], None] | None = None,
    ) -> None:
        """Reset all per-run state (the simulator calls this at run start)."""
        self.stats = ResilienceStats()
        if self.injector is not None:
            self.injector.reset()
        self.probe.reset()
        self.degraded_dispatcher.reset()
        self.oracle_breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            recovery_interval=self.config.recovery_interval,
        )
        self.dispatch_breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            recovery_interval=self.config.recovery_interval,
        )
        self._jitter_rng = Random(f"{self.config.probe_seed}:jitter")
        self._recorder = recorder
        self._now = 0.0

    @property
    def faults_injected(self) -> int:
        """Total faults injected so far (0 without a fault injector)."""
        return self.injector.faults_injected if self.injector is not None else 0

    @property
    def breaker_trips(self) -> int:
        """Trips across both breakers (the metrics counter)."""
        return self.oracle_breaker.trips + self.dispatch_breaker.trips

    def _emit(self, kind: str, subject: int, other: int | None = None) -> None:
        if self._recorder is not None:
            self._recorder(self._now, kind, subject, other)
        # Mirror every resilience event into the active trace: breaker
        # transitions, retries, probe failures and heals become leaf spans
        # diagnosable next to the stage timings they interrupted.
        if other is None:
            get_tracer().event(f"resilience.{kind}", subject=subject)
        else:
            get_tracer().event(f"resilience.{kind}", subject=subject, other=other)

    def _on_oracle_retry(self, attempt: int, pause: float, error: ReproError) -> None:
        self.stats.retries += 1
        self._emit(EVENT_FAULT_RETRY, attempt)

    # ------------------------------------------------------------------ #
    # oracle ladder (called by the refresh policies)
    # ------------------------------------------------------------------ #
    def guarded_rebuild(self, oracle: DistanceOracle) -> tuple[float, bool]:
        """Rebuild with retry; on exhaustion drop to the exact fallback.

        Returns ``(seconds_spent, success)``.  On failure the oracle serves
        its fresh-CSR Dijkstra fallback (exact, so correctness holds while
        the breaker waits for a recovery probe).  While the breaker is open
        the rebuild is not even attempted -- the fallback is refreshed and
        the recovery probe in :meth:`before_dispatch` owns the retry.
        """
        breaker = self.oracle_breaker
        start = time.perf_counter()
        if breaker.state is BreakerState.OPEN:
            oracle.enable_fallback()
            self.stats.fallback_activations += 1
            return time.perf_counter() - start, False
        try:
            _, outcome = self.retry.call(
                oracle.rebuild,
                rng=self._jitter_rng,
                error_type=OracleBuildError,
                describe="oracle rebuild",
                on_retry=self._on_oracle_retry,
            )
        except OracleBuildError:
            if breaker.record_failure():
                self._emit(EVENT_BREAKER_OPENED, ORACLE_BREAKER)
            oracle.enable_fallback()
            self.stats.fallback_activations += 1
            elapsed = time.perf_counter() - start
            self.stats.recovery_seconds += elapsed
            return elapsed, False
        if breaker.record_success():
            self._emit(EVENT_BREAKER_CLOSED, ORACLE_BREAKER)
        return outcome.seconds, True

    def guarded_repair(
        self, oracle: DistanceOracle, *, max_affected_fraction: float = 1.0
    ) -> RepairReport:
        """Repair with retry; exhaustion climbs the ladder to a rebuild.

        Returns the backend's :class:`RepairReport` on success.  When the
        retry budget is exhausted the ladder trips to an eager rebuild
        (itself guarded), reported as mode ``"rebuilt"`` -- or
        ``"fallback"`` when the rebuild failed too and the oracle is serving
        its exact Dijkstra fallback.
        """
        breaker = self.oracle_breaker
        start = time.perf_counter()
        if breaker.state is BreakerState.OPEN:
            oracle.enable_fallback()
            self.stats.fallback_activations += 1
            return RepairReport(
                mode="fallback", seconds=time.perf_counter() - start
            )
        try:
            report, _ = self.retry.call(
                lambda: oracle.repair(max_affected_fraction=max_affected_fraction),
                rng=self._jitter_rng,
                error_type=OracleRepairError,
                describe="oracle repair",
                on_retry=self._on_oracle_retry,
            )
        except OracleRepairError:
            repair_elapsed = time.perf_counter() - start
            self.stats.recovery_seconds += repair_elapsed
            seconds, rebuilt = self.guarded_rebuild(oracle)
            return RepairReport(
                mode="rebuilt" if rebuilt else "fallback",
                seconds=repair_elapsed + seconds,
            )
        if breaker.record_success():
            self._emit(EVENT_BREAKER_CLOSED, ORACLE_BREAKER)
        return report

    # ------------------------------------------------------------------ #
    # batch hooks (called by the simulator)
    # ------------------------------------------------------------------ #
    def before_dispatch(
        self, network: RoadNetwork, oracle: DistanceOracle, now: float
    ) -> None:
        """Oracle-breaker recovery probe + invariant probes, pre-dispatch.

        Runs after the scenario step (mutations + refresh) and before the
        batch is dispatched, so every dispatch prices insertions on a
        probe-verified oracle -- the ordering that makes accepted
        assignments parity-exact under injected corruption.
        """
        self._now = now
        breaker = self.oracle_breaker
        if breaker.state is BreakerState.OPEN and breaker.tick():
            self._attempt_oracle_recovery(oracle)
        self._run_probes(network, oracle)

    def _attempt_oracle_recovery(self, oracle: DistanceOracle) -> None:
        """Half-open probe: one unretried rebuild decides open vs closed."""
        start = time.perf_counter()
        try:
            oracle.rebuild()
        except ReproError:
            if self.oracle_breaker.record_failure():
                self._emit(EVENT_BREAKER_OPENED, ORACLE_BREAKER)
            oracle.enable_fallback()
            self.stats.fallback_activations += 1
        else:
            if self.oracle_breaker.record_success():
                self._emit(EVENT_BREAKER_CLOSED, ORACLE_BREAKER)
        self.stats.recovery_seconds += time.perf_counter() - start

    def _run_probes(self, network: RoadNetwork, oracle: DistanceOracle) -> None:
        """Invariant probes; mismatches trigger the self-healing rung."""
        if self.config.probe_pairs <= 0:
            return
        probe_start = time.perf_counter()
        failures = self.probe.check(network, oracle)
        get_tracer().event(
            "resilience.probe",
            duration=time.perf_counter() - probe_start,
            pairs=self.config.probe_pairs,
            failures=len(failures),
        )
        if not failures:
            return
        self.stats.probe_failures += len(failures)
        self._emit(EVENT_PROBE_FAILED, len(failures))
        start = time.perf_counter()
        healed = False
        for _ in range(self.config.max_heal_attempts):
            if isinstance(oracle, ChaosOracle):
                oracle.heal()
            self.guarded_rebuild(oracle)
            self.stats.self_heals += 1
            self._emit(EVENT_SELF_HEALED, len(failures))
            failures = self.probe.check(network, oracle)
            if not failures:
                healed = True
                break
            self.stats.probe_failures += len(failures)
            self._emit(EVENT_PROBE_FAILED, len(failures))
        if not healed:
            # Last rung: exact fresh-CSR Dijkstra with corruption cleared.
            if isinstance(oracle, ChaosOracle):
                oracle.heal()
            oracle.enable_fallback()
            self.stats.fallback_activations += 1
            failures = self.probe.check(network, oracle)
            if failures:
                worst = failures[0]
                raise ResilienceError(
                    "invariant probes still failing after self-healing and "
                    f"exact fallback: cost({worst.source}, {worst.target}) = "
                    f"{worst.got} but fresh Dijkstra says {worst.want}"
                )
        elapsed = time.perf_counter() - start
        self.stats.recovery_seconds += elapsed
        self.stats.heal_seconds.append(elapsed)

    def select_dispatcher(self, primary: Dispatcher) -> tuple[Dispatcher, bool]:
        """The dispatcher for this batch and whether it is the degraded one.

        Half-open probe batches run the primary dispatcher again; the
        following :meth:`observe_batch` decides whether the breaker closes
        (within budget) or re-opens.
        """
        if self.config.batch_time_budget is None:
            return primary, False
        breaker = self.dispatch_breaker
        if breaker.state is BreakerState.OPEN:
            if breaker.tick():
                return primary, False
            return self.degraded_dispatcher, True
        return primary, False

    def start_batch(self) -> None:
        """Discard virtual latency accrued outside dispatch (probes, advance)."""
        if self.injector is not None:
            self.injector.drain_latency()

    def observe_batch(
        self, dispatch_seconds: float, *, degraded: bool, now: float
    ) -> tuple[float, bool]:
        """Charge one dispatched batch against the time budget.

        Returns ``(charged_seconds, overrun)`` where the charge is the
        injected virtual latency drained from the injector plus -- when
        ``count_real_dispatch_time`` is set -- the real dispatch wall-clock.
        """
        self._now = now
        injected = (
            self.injector.drain_latency() if self.injector is not None else 0.0
        )
        charged = injected
        if self.config.count_real_dispatch_time:
            charged += dispatch_seconds
        if degraded:
            self.stats.degraded_batches += 1
            self._emit(EVENT_DISPATCH_DEGRADED, DISPATCH_BREAKER)
            return charged, False
        budget = self.config.batch_time_budget
        if budget is None:
            return charged, False
        overrun = charged > budget
        breaker = self.dispatch_breaker
        if overrun:
            self.stats.batch_overruns += 1
            if breaker.record_failure():
                self._emit(EVENT_BREAKER_OPENED, DISPATCH_BREAKER)
        elif breaker.record_success():
            self._emit(EVENT_BREAKER_CLOSED, DISPATCH_BREAKER)
        return charged, overrun

    def finalize(
        self, network: RoadNetwork, oracle: DistanceOracle, now: float
    ) -> None:
        """Tail probes after the final refresh, before post-run advancing."""
        self._now = now
        self._run_probes(network, oracle)

    # ------------------------------------------------------------------ #
    # acceptance verification
    # ------------------------------------------------------------------ #
    def verify_assignments(
        self,
        network: RoadNetwork,
        oracle: DistanceOracle,
        assignments: Sequence[Assignment],
        vehicles_by_id: Mapping[int, object] | None = None,
        *,
        tolerance: float = 1e-6,
    ) -> None:
        """Check every accepted assignment's leg costs against fresh Dijkstra.

        Verifies the invariant the resilience layer promises: whatever
        faults were injected, the costs dispatch committed to are exact.
        Raises :class:`ResilienceError` on any deviation.
        """
        if not assignments:
            return
        reference = DistanceOracle(network, cache_size=0, backend="dijkstra")
        for assignment in assignments:
            nodes = list(assignment.schedule.nodes())
            if vehicles_by_id is not None:
                vehicle = vehicles_by_id.get(assignment.vehicle_id)
                if vehicle is not None:
                    nodes = [vehicle.location, *nodes]
            for u, v in zip(nodes, nodes[1:]):
                if u == v:
                    continue
                got = oracle.cost(u, v)
                want = reference.cost(u, v)
                if math.isinf(got) and math.isinf(want):
                    continue
                if (
                    math.isinf(got)
                    or math.isinf(want)
                    or abs(got - want) > tolerance * max(1.0, abs(want))
                ):
                    raise ResilienceError(
                        f"accepted assignment for vehicle {assignment.vehicle_id} "
                        f"priced leg ({u}, {v}) at {got} but fresh Dijkstra "
                        f"says {want} -- the oracle served an inexact cost"
                    )


__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "ResilienceManager",
    "ResilienceStats",
]
