"""Core ridesharing data model: requests, vehicles, schedules and batches.

These classes implement Definitions 1-4 of the paper:

* :class:`~repro.model.request.Request` -- a ride request (Definition 1)
  with its release time, deadline and rider count.
* :class:`~repro.model.schedule.Schedule` -- an ordered list of pick-up /
  drop-off way-points (Definition 2) with the coverage, order, capacity and
  deadline feasibility checks, plus buffer times (Definition 3).
* :class:`~repro.model.vehicle.Vehicle` -- a capacitated vehicle that moves
  along its schedule as simulated time advances.
* :class:`~repro.model.batch.BatchStream` -- partitions dynamically arriving
  requests into batches of length ``Delta`` (the Batched Dynamic Ridesharing
  Problem of Definition 4).
"""

from .request import Request
from .schedule import Schedule, Waypoint, WaypointKind, ScheduleEvaluation
from .vehicle import Vehicle, RouteState
from .batch import Batch, BatchStream

__all__ = [
    "Request",
    "Schedule",
    "Waypoint",
    "WaypointKind",
    "ScheduleEvaluation",
    "Vehicle",
    "RouteState",
    "Batch",
    "BatchStream",
]
