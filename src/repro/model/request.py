"""Ride requests (Definition 1 of the paper)."""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import ConfigurationError


@dataclass(frozen=True, order=True)
class Request:
    """A ridesharing request ``r_i = <s_i, e_i, n_i, t_i, d_i>``.

    Attributes
    ----------
    request_id:
        Unique integer identifier.
    source, destination:
        Road-network node identifiers of the pick-up and drop-off locations.
    riders:
        Number of riders travelling together (``n_i``).
    release_time:
        Time the request becomes known to the platform (``t_i``), in seconds.
    deadline:
        Latest acceptable drop-off time (``d_i``), in seconds.  The usual
        construction is ``release_time + gamma * direct_cost``.
    direct_cost:
        Shortest travel time from source to destination (``cost(r_i)``), in
        seconds.  Cached on the request because the unified cost, the penalty
        term and many pruning rules reuse it.
    max_wait:
        Maximum time the rider will wait for pick-up after the release time
        (the paper uses 5 minutes).
    """

    # ``order=True`` sorts by release time first, which is the natural
    # processing order for online baselines.
    release_time: float
    request_id: int
    source: int
    destination: int
    riders: int = 1
    deadline: float = math.inf
    direct_cost: float = 0.0
    max_wait: float = math.inf

    def __post_init__(self) -> None:
        if self.riders < 1:
            raise ConfigurationError(
                f"request {self.request_id} must carry at least one rider"
            )
        if self.direct_cost < 0:
            raise ConfigurationError(
                f"request {self.request_id} has negative direct cost"
            )
        if self.deadline < self.release_time:
            raise ConfigurationError(
                f"request {self.request_id} has a deadline before its release time"
            )
        if self.max_wait < 0:
            raise ConfigurationError(
                f"request {self.request_id} has a negative maximum waiting time"
            )

    # ------------------------------------------------------------------ #
    # derived deadlines
    # ------------------------------------------------------------------ #
    @property
    def latest_pickup(self) -> float:
        """Latest feasible pick-up time.

        A pick-up is constrained both by the drop-off deadline minus the
        direct travel time (``ddl(o_k) = d_i - cost(s_i, e_i)`` in the paper)
        and by the rider's maximum waiting time.
        """
        return min(self.release_time + self.max_wait, self.deadline - self.direct_cost)

    @property
    def detour_budget(self) -> float:
        """Extra travel time the rider tolerates beyond the direct trip."""
        return self.deadline - self.release_time - self.direct_cost

    def is_expired(self, current_time: float) -> bool:
        """True when the request can no longer be picked up in time."""
        return current_time > self.latest_pickup

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        request_id: int,
        source: int,
        destination: int,
        release_time: float,
        *,
        direct_cost: float,
        gamma: float,
        max_wait: float = math.inf,
        riders: int = 1,
    ) -> "Request":
        """Build a request with ``deadline = release + gamma * direct_cost``.

        This mirrors the deadline construction used throughout the paper's
        experiments (Section V-A).
        """
        if gamma <= 1.0:
            raise ConfigurationError("gamma must be > 1 when deriving deadlines")
        deadline = release_time + gamma * direct_cost
        return cls(
            request_id=request_id,
            source=source,
            destination=destination,
            riders=riders,
            release_time=release_time,
            deadline=deadline,
            direct_cost=direct_cost,
            max_wait=max_wait,
        )

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Request({self.request_id}: {self.source}->{self.destination}, "
            f"t={self.release_time:.0f}, d={self.deadline:.0f}, n={self.riders})"
        )
