"""Vehicle schedules: way-points, feasibility and buffer times.

A schedule (Definition 2) is an ordered list of way-points, each being the
pick-up or drop-off location of an assigned request.  A schedule is feasible
when it satisfies the coverage, order, capacity and deadline constraints.
Buffer times (Definition 3) measure how much extra detour each way-point can
absorb without violating any later deadline.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator, Sequence

from ..exceptions import ScheduleError
from ..network.shortest_path import DistanceOracle
from .request import Request


class WaypointKind(enum.Enum):
    """Whether a way-point is a pick-up (source) or a drop-off (destination)."""

    PICKUP = "pickup"
    DROPOFF = "dropoff"


@dataclass(frozen=True)
class Waypoint:
    """One stop of a schedule: the source or destination of a request."""

    request: Request
    kind: WaypointKind

    @property
    def node(self) -> int:
        """Road-network node of this stop."""
        if self.kind is WaypointKind.PICKUP:
            return self.request.source
        return self.request.destination

    @property
    def deadline(self) -> float:
        """Latest arrival time at this stop (``ddl(o_k)`` in the paper)."""
        if self.kind is WaypointKind.PICKUP:
            return self.request.latest_pickup
        return self.request.deadline

    @property
    def earliest_service(self) -> float:
        """Earliest time the stop can be serviced (pick-ups wait for release)."""
        if self.kind is WaypointKind.PICKUP:
            return self.request.release_time
        return 0.0

    @property
    def load_delta(self) -> int:
        """Change in onboard riders when the stop is serviced."""
        if self.kind is WaypointKind.PICKUP:
            return self.request.riders
        return -self.request.riders

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        tag = "+" if self.kind is WaypointKind.PICKUP else "-"
        return f"Waypoint({tag}{self.request.request_id}@{self.node})"


@dataclass(frozen=True)
class ScheduleEvaluation:
    """Result of simulating a schedule from a given origin."""

    feasible: bool
    #: Total driving time over all legs (excludes waiting at stops).
    travel_cost: float
    #: Service time at each way-point (same length as the schedule) when
    #: feasible; truncated at the first violated way-point otherwise.
    arrival_times: tuple[float, ...]
    #: Human-readable reason for infeasibility (empty when feasible).
    reason: str = ""


class Schedule:
    """An immutable ordered sequence of :class:`Waypoint` objects.

    The class stores no costs itself; evaluation against a
    :class:`~repro.network.shortest_path.DistanceOracle` yields arrival
    times, feasibility and total travel cost.
    """

    __slots__ = ("_waypoints",)

    def __init__(self, waypoints: Iterable[Waypoint] = ()) -> None:
        self._waypoints: tuple[Waypoint, ...] = tuple(waypoints)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "Schedule":
        """The empty schedule."""
        return cls(())

    @classmethod
    def direct(cls, request: Request) -> "Schedule":
        """The two-stop schedule ``<source, destination>`` of one request."""
        return cls(
            (
                Waypoint(request, WaypointKind.PICKUP),
                Waypoint(request, WaypointKind.DROPOFF),
            )
        )

    # ------------------------------------------------------------------ #
    # sequence protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._waypoints)

    def __iter__(self) -> Iterator[Waypoint]:
        return iter(self._waypoints)

    def __getitem__(self, index: int) -> Waypoint:
        return self._waypoints[index]

    def __bool__(self) -> bool:
        return bool(self._waypoints)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._waypoints == other._waypoints

    def __hash__(self) -> int:
        return hash(self._waypoints)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Schedule({list(self._waypoints)!r})"

    @property
    def waypoints(self) -> tuple[Waypoint, ...]:
        """The way-points as an immutable tuple."""
        return self._waypoints

    def nodes(self) -> list[int]:
        """Road-network nodes visited, in order."""
        return [wp.node for wp in self._waypoints]

    def request_ids(self) -> set[int]:
        """Identifiers of every request appearing in the schedule."""
        return {wp.request.request_id for wp in self._waypoints}

    def requests(self) -> list[Request]:
        """Distinct requests appearing in the schedule (insertion order)."""
        seen: dict[int, Request] = {}
        for wp in self._waypoints:
            seen.setdefault(wp.request.request_id, wp.request)
        return list(seen.values())

    def onboard_request_ids(self) -> set[int]:
        """Requests with a drop-off but no pick-up (already picked up)."""
        pickups = {
            wp.request.request_id
            for wp in self._waypoints
            if wp.kind is WaypointKind.PICKUP
        }
        dropoffs = {
            wp.request.request_id
            for wp in self._waypoints
            if wp.kind is WaypointKind.DROPOFF
        }
        return dropoffs - pickups

    # ------------------------------------------------------------------ #
    # structural checks
    # ------------------------------------------------------------------ #
    def satisfies_order(self) -> bool:
        """Coverage + order constraints: each drop-off follows its pick-up and
        every picked-up request is eventually dropped off."""
        picked: set[int] = set()
        dropped: set[int] = set()
        for wp in self._waypoints:
            rid = wp.request.request_id
            if wp.kind is WaypointKind.PICKUP:
                if rid in picked or rid in dropped:
                    return False
                picked.add(rid)
            else:
                if rid in dropped:
                    return False
                # Drop-offs for onboard requests (no pickup in the remaining
                # schedule) are allowed; otherwise the pick-up must precede.
                dropped.add(rid)
        return picked <= dropped

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        oracle: DistanceOracle,
        origin: int,
        departure_time: float,
        *,
        capacity: int,
        initial_load: int = 0,
    ) -> ScheduleEvaluation:
        """Simulate driving the schedule starting at ``origin``.

        The vehicle departs ``origin`` at ``departure_time`` with
        ``initial_load`` riders onboard, drives the shortest path between
        consecutive way-points, waits at a pick-up if it arrives before the
        request's release time, and must reach every way-point before its
        deadline while never exceeding ``capacity`` riders.
        """
        if not self.satisfies_order():
            return ScheduleEvaluation(False, math.inf, (), "order constraint violated")
        load = initial_load
        clock = departure_time
        here = origin
        travel = 0.0
        arrivals: list[float] = []
        for index, wp in enumerate(self._waypoints):
            leg = oracle.cost(here, wp.node)
            if math.isinf(leg):
                return ScheduleEvaluation(
                    False, math.inf, tuple(arrivals),
                    f"way-point {index} unreachable",
                )
            travel += leg
            clock += leg
            # A pick-up cannot happen before the request is released.
            clock = max(clock, wp.earliest_service)
            if clock > wp.deadline + 1e-9:
                return ScheduleEvaluation(
                    False, math.inf, tuple(arrivals),
                    f"deadline violated at way-point {index}",
                )
            load += wp.load_delta
            if load > capacity:
                return ScheduleEvaluation(
                    False, math.inf, tuple(arrivals),
                    f"capacity exceeded at way-point {index}",
                )
            if load < 0:
                return ScheduleEvaluation(
                    False, math.inf, tuple(arrivals),
                    f"negative load at way-point {index}",
                )
            arrivals.append(clock)
            here = wp.node
        return ScheduleEvaluation(True, travel, tuple(arrivals))

    def travel_cost(
        self, oracle: DistanceOracle, origin: int
    ) -> float:
        """Total driving time of the schedule from ``origin`` (no feasibility)."""
        total = 0.0
        here = origin
        for wp in self._waypoints:
            total += oracle.cost(here, wp.node)
            here = wp.node
        return total

    def buffer_times(
        self,
        oracle: DistanceOracle,
        origin: int,
        departure_time: float,
    ) -> list[float]:
        """Buffer time of each way-point (Definition 3).

        ``buf(o_x)`` is the maximum extra detour the vehicle could take at
        way-point ``o_x`` without violating the deadline of any later
        way-point.  Computed backwards:
        ``buf(o_x) = min(buf(o_{x+1}), ddl(o_{x+1}) - arrive(o_{x+1}))`` with
        the convention that the last way-point's buffer is its own slack.
        """
        if not self._waypoints:
            return []
        evaluation = self.evaluate(
            oracle, origin, departure_time, capacity=10**9, initial_load=0
        )
        arrivals = list(evaluation.arrival_times)
        if len(arrivals) < len(self._waypoints):
            # Pad with +inf slack for unreachable tail (callers should have
            # checked feasibility first; this keeps the function total).
            arrivals += [math.inf] * (len(self._waypoints) - len(arrivals))
        buffers = [0.0] * len(self._waypoints)
        last = len(self._waypoints) - 1
        buffers[last] = self._waypoints[last].deadline - arrivals[last]
        for x in range(last - 1, -1, -1):
            slack_next = self._waypoints[x + 1].deadline - arrivals[x + 1]
            buffers[x] = min(buffers[x + 1], slack_next)
        return buffers

    # ------------------------------------------------------------------ #
    # editing
    # ------------------------------------------------------------------ #
    def with_insertion(
        self, request: Request, pickup_position: int, dropoff_position: int
    ) -> "Schedule":
        """Return a new schedule with ``request`` inserted.

        ``pickup_position`` is the index (in the current schedule) before
        which the pick-up is placed; ``dropoff_position`` is the index before
        which the drop-off is placed *after* the pick-up has been inserted,
        so ``dropoff_position`` must be strictly greater than
        ``pickup_position``.
        """
        n = len(self._waypoints)
        if not 0 <= pickup_position <= n:
            raise ScheduleError(f"pickup position {pickup_position} out of range")
        if not pickup_position < dropoff_position <= n + 1:
            raise ScheduleError(
                f"dropoff position {dropoff_position} must follow pickup "
                f"position {pickup_position}"
            )
        pickup = Waypoint(request, WaypointKind.PICKUP)
        dropoff = Waypoint(request, WaypointKind.DROPOFF)
        extended = list(self._waypoints)
        extended.insert(pickup_position, pickup)
        extended.insert(dropoff_position, dropoff)
        return Schedule(extended)

    def without_request(self, request_id: int) -> "Schedule":
        """Return a new schedule with every way-point of ``request_id`` removed."""
        remaining = [
            wp for wp in self._waypoints if wp.request.request_id != request_id
        ]
        return Schedule(remaining)

    def extended(self, waypoints: Sequence[Waypoint]) -> "Schedule":
        """Return a new schedule with ``waypoints`` appended."""
        return Schedule(self._waypoints + tuple(waypoints))
