"""Capacitated vehicles that move along their schedules over simulated time."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..exceptions import ScheduleError
from ..network.shortest_path import DistanceOracle
from .request import Request
from .schedule import Schedule, Waypoint, WaypointKind


@dataclass(frozen=True)
class RouteState:
    """Snapshot of a vehicle handed to dispatchers for planning.

    ``origin`` / ``departure_time`` are the node and the moment from which
    the remaining schedule should be evaluated.  When the vehicle is driving
    a leg, the first way-point is *committed*: new stops may only be inserted
    at positions >= ``min_insert_position``.
    """

    vehicle_id: int
    origin: int
    departure_time: float
    schedule: Schedule
    capacity: int
    onboard: int
    min_insert_position: int = 0

    @property
    def free_seats(self) -> int:
        """Seats not occupied by onboard riders."""
        return self.capacity - self.onboard


@dataclass
class Vehicle:
    """A vehicle ``w_j`` with a capacity, a location and a planned schedule.

    The vehicle's clock (``_clock``) is the time at which the vehicle is at
    ``location`` ready to depart.  Movement between way-points is committed
    whole legs at a time: once a leg has started, it completes at the
    shortest-path travel time of that leg.
    """

    vehicle_id: int
    location: int
    capacity: int = 3
    schedule: Schedule = field(default_factory=Schedule.empty)
    #: Riders currently inside the vehicle.
    onboard: int = 0
    #: Requests assigned but not yet completed, keyed by request id.
    active_requests: dict[int, Request] = field(default_factory=dict)
    #: Completed requests with their drop-off times.
    completed: list[tuple[Request, float]] = field(default_factory=list)
    #: Total realized driving time, in seconds.
    total_travel_time: float = 0.0
    #: Off-shift vehicles (scenario shift-end events) finish their remaining
    #: schedule but receive no new assignments and leave the spatial index.
    on_shift: bool = True
    _clock: float = 0.0
    #: Arrival time at the first way-point of the schedule when the vehicle
    #: is driving; ``None`` when idle.
    _leg_arrival: float | None = None
    #: Travel time of the leg currently being driven.
    _pending_leg_cost: float = 0.0

    # ------------------------------------------------------------------ #
    # planning interface
    # ------------------------------------------------------------------ #
    def route_state(self, current_time: float) -> RouteState:
        """Return the planning snapshot of this vehicle at ``current_time``."""
        if self.schedule and self._leg_arrival is not None:
            # Driving: the first remaining way-point is committed.
            return RouteState(
                vehicle_id=self.vehicle_id,
                origin=self.location,
                departure_time=self._clock,
                schedule=self.schedule,
                capacity=self.capacity,
                onboard=self.onboard,
                min_insert_position=1,
            )
        return RouteState(
            vehicle_id=self.vehicle_id,
            origin=self.location,
            departure_time=max(self._clock, current_time),
            schedule=self.schedule,
            capacity=self.capacity,
            onboard=self.onboard,
            min_insert_position=0,
        )

    @property
    def is_idle(self) -> bool:
        """True when the vehicle has no remaining way-points."""
        return len(self.schedule) == 0

    @property
    def assigned_request_ids(self) -> set[int]:
        """Identifiers of requests currently assigned to this vehicle."""
        return set(self.active_requests)

    # ------------------------------------------------------------------ #
    # assignment
    # ------------------------------------------------------------------ #
    def assign_schedule(
        self,
        schedule: Schedule,
        new_requests: list[Request],
        current_time: float,
    ) -> None:
        """Replace the remaining schedule and register newly accepted requests.

        The new schedule must keep every previously assigned (uncompleted)
        request and, when the vehicle is mid-leg, keep the committed first
        way-point in place.
        """
        previous_ids = set(self.active_requests)
        new_ids = {r.request_id for r in new_requests}
        covered = schedule.request_ids() | {
            rid for rid in previous_ids if rid not in schedule.request_ids()
        }
        missing = previous_ids - covered
        if missing:
            raise ScheduleError(
                f"vehicle {self.vehicle_id}: new schedule drops active requests {missing}"
            )
        if self._leg_arrival is not None and self.schedule:
            committed = self.schedule[0]
            if not schedule or schedule[0] != committed:
                raise ScheduleError(
                    f"vehicle {self.vehicle_id}: committed way-point {committed!r} "
                    "must stay first while the vehicle is driving"
                )
        for request in new_requests:
            self.active_requests[request.request_id] = request
        was_idle = not self.schedule
        self.schedule = schedule
        if was_idle:
            self._clock = max(self._clock, current_time)
            self._leg_arrival = None
        # The request ids in ``new_ids`` not present in the schedule would be
        # a dispatcher bug: catch it early.
        absent = new_ids - schedule.request_ids()
        if absent:
            raise ScheduleError(
                f"vehicle {self.vehicle_id}: accepted requests {absent} missing "
                "from the assigned schedule"
            )

    # ------------------------------------------------------------------ #
    # movement
    # ------------------------------------------------------------------ #
    def advance_to(self, time: float, oracle: DistanceOracle) -> list[tuple[Request, float]]:
        """Drive along the schedule until ``time``; return completed requests.

        Way-points are processed whenever their arrival time is within the
        horizon.  The returned list contains ``(request, drop_off_time)``
        pairs for requests completed during this advance.
        """
        completed_now: list[tuple[Request, float]] = []
        while self.schedule:
            waypoint = self.schedule[0]
            if self._leg_arrival is None:
                leg_cost = oracle.cost(self.location, waypoint.node)
                if math.isinf(leg_cost):
                    raise ScheduleError(
                        f"vehicle {self.vehicle_id}: way-point {waypoint!r} unreachable"
                    )
                departure = max(self._clock, waypoint.earliest_service - leg_cost)
                self._leg_arrival = departure + leg_cost
                self._pending_leg_cost = leg_cost
            arrival = self._leg_arrival
            service_time = max(arrival, waypoint.earliest_service)
            if service_time > time:
                break
            # Arrive and service the way-point.
            self.total_travel_time += self._pending_leg_cost
            self.location = waypoint.node
            self._clock = service_time
            self._leg_arrival = None
            if waypoint.kind is WaypointKind.PICKUP:
                self.onboard += waypoint.request.riders
            else:
                self.onboard -= waypoint.request.riders
                request = self.active_requests.pop(waypoint.request.request_id, None)
                if request is not None:
                    self.completed.append((request, service_time))
                    completed_now.append((request, service_time))
            self.schedule = Schedule(self.schedule.waypoints[1:])
        if not self.schedule:
            self._clock = max(self._clock, time)
            self._leg_arrival = None
        return completed_now

    def next_event_time(self, oracle: DistanceOracle) -> float:
        """Time at which the vehicle will service its next way-point."""
        if not self.schedule:
            return math.inf
        waypoint = self.schedule[0]
        if self._leg_arrival is not None:
            return max(self._leg_arrival, waypoint.earliest_service)
        leg_cost = oracle.cost(self.location, waypoint.node)
        return max(self._clock + leg_cost, waypoint.earliest_service)

    def estimated_memory_bytes(self) -> int:
        """Rough memory footprint of the vehicle state (for the memory study)."""
        return 200 + 80 * len(self.schedule) + 60 * len(self.active_requests)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Vehicle({self.vehicle_id} at {self.location}, cap={self.capacity}, "
            f"onboard={self.onboard}, stops={len(self.schedule)})"
        )
