"""Batching of dynamically arriving requests (Definition 4).

The Batched Dynamic Ridesharing Problem handles the requests released during
each period ``Delta`` together.  :class:`BatchStream` slices a request trace
into consecutive batches; the simulator consumes them in order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterator, Sequence

from ..exceptions import ConfigurationError
from .request import Request


@dataclass(frozen=True)
class Batch:
    """The requests released during one batching period ``[start, end)``."""

    index: int
    start_time: float
    end_time: float
    requests: tuple[Request, ...]

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    @property
    def is_empty(self) -> bool:
        """True when no request was released during this period."""
        return not self.requests


class BatchStream:
    """Partition a request trace into batches of length ``batch_period``.

    Requests are assigned to the batch covering their release time; batch
    boundaries are multiples of ``batch_period`` starting at the release time
    of the earliest request (or at ``start_time`` when provided).  Empty
    batches between two non-empty ones are emitted so that the simulator's
    clock advances uniformly, matching the paper's tumbling-window model.
    """

    def __init__(
        self,
        requests: Sequence[Request],
        batch_period: float,
        *,
        start_time: float | None = None,
        emit_empty: bool = True,
    ) -> None:
        if batch_period <= 0:
            raise ConfigurationError("batch_period must be positive")
        self._batch_period = float(batch_period)
        self._requests = sorted(requests, key=lambda r: (r.release_time, r.request_id))
        self._emit_empty = emit_empty
        if start_time is not None:
            self._start = float(start_time)
        elif self._requests:
            self._start = math.floor(
                self._requests[0].release_time / batch_period
            ) * batch_period
        else:
            self._start = 0.0

    @property
    def batch_period(self) -> float:
        """Length of each batch in seconds."""
        return self._batch_period

    @property
    def start_time(self) -> float:
        """Start of the first batch."""
        return self._start

    @property
    def num_requests(self) -> int:
        """Total number of requests in the stream."""
        return len(self._requests)

    def __iter__(self) -> Iterator[Batch]:
        if not self._requests:
            return
        period = self._batch_period
        index = 0
        cursor = 0
        batch_start = self._start
        n = len(self._requests)
        while cursor < n:
            batch_end = batch_start + period
            members: list[Request] = []
            while cursor < n and self._requests[cursor].release_time < batch_end:
                members.append(self._requests[cursor])
                cursor += 1
            if members or self._emit_empty:
                yield Batch(
                    index=index,
                    start_time=batch_start,
                    end_time=batch_end,
                    requests=tuple(members),
                )
                index += 1
            batch_start = batch_end

    def batches(self) -> list[Batch]:
        """Materialise every batch into a list."""
        return list(self)
