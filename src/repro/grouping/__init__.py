"""Request grouping: the modified additive tree of Algorithm 2.

Batch-mode dispatchers enumerate feasible *groups* of requests before
assignment.  The additive tree (Zeng et al. [33]) enumerates groups level by
level -- every valid group of size ``l`` extends a valid group of size
``l - 1`` by one request.  StructRide modifies the tree in two ways:

* only groups forming a clique in the shareability graph are considered
  (Observation 2 / Lemma IV.1), and
* each tree node keeps a single schedule, built by inserting the group's
  highest-shareability member into its parent's schedule, instead of every
  feasible schedule.
"""

from .group import RequestGroup
from .additive_tree import build_groups, GroupingStatistics

__all__ = ["RequestGroup", "build_groups", "GroupingStatistics"]
