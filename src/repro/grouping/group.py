"""Request groups: the unit of acceptance for batch-mode dispatchers."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..model.request import Request
from ..model.schedule import Schedule


@dataclass(frozen=True)
class RequestGroup:
    """A set of requests together with a feasible schedule serving them all.

    ``delta_cost`` is the increase in travel time over the vehicle's current
    schedule (the group is always evaluated against a specific vehicle's
    route state); ``total_cost`` is the travel time of the full new schedule.
    """

    members: frozenset[int]
    requests: tuple[Request, ...]
    schedule: Schedule
    delta_cost: float
    total_cost: float
    #: Shareability loss of the group; filled lazily by SARD's acceptance phase.
    loss: float | None = field(default=None, compare=False)

    @property
    def size(self) -> int:
        """Number of requests in the group."""
        return len(self.members)

    @property
    def riders(self) -> int:
        """Total riders carried by the group."""
        return sum(request.riders for request in self.requests)

    @property
    def direct_cost(self) -> float:
        """Sum of the members' direct travel costs (the GAS profit measure)."""
        return sum(request.direct_cost for request in self.requests)

    def with_loss(self, loss: float) -> "RequestGroup":
        """Return a copy of the group with the shareability loss filled in."""
        return RequestGroup(
            members=self.members,
            requests=self.requests,
            schedule=self.schedule,
            delta_cost=self.delta_cost,
            total_cost=self.total_cost,
            loss=loss,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        ids = ",".join(str(rid) for rid in sorted(self.members))
        return f"RequestGroup({{{ids}}}, delta={self.delta_cost:.1f})"
