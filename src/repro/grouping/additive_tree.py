"""The modified additive tree (Algorithm 2 of the paper).

Groups are enumerated level by level.  Level 1 contains every request that
the target vehicle can serve on top of its current schedule; level ``l``
merges pairs of level-``l-1`` groups whose union has exactly ``l`` members
and forms a clique in the shareability graph (Lemma IV.1).  Each group keeps
one schedule, obtained by inserting the member with the highest shareability
into the schedule of the parent group that excludes it -- the
shareability-ordered linear insertion of Section IV-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any
from collections.abc import Callable, Iterable, Sequence

from ..insertion.linear_insertion import best_insertion, base_route_cost
from ..model.request import Request
from ..model.schedule import Schedule
from ..model.vehicle import RouteState
from ..network.shortest_path import DistanceOracle
from ..shareability.graph import ShareabilityGraph
from .group import RequestGroup


@dataclass
class GroupingStatistics:
    """Counters describing the work performed by one grouping run."""

    groups_generated: int = 0
    merges_attempted: int = 0
    pruned_not_clique: int = 0
    pruned_infeasible: int = 0

    def merge(self, other: "GroupingStatistics") -> None:
        """Accumulate another statistics object into this one."""
        self.groups_generated += other.groups_generated
        self.merges_attempted += other.merges_attempted
        self.pruned_not_clique += other.pruned_not_clique
        self.pruned_infeasible += other.pruned_infeasible


def _replace_schedule(route: RouteState, group_schedule: Schedule) -> RouteState:
    """A route state identical to ``route`` but carrying ``group_schedule``."""
    return RouteState(
        vehicle_id=route.vehicle_id,
        origin=route.origin,
        departure_time=route.departure_time,
        schedule=group_schedule,
        capacity=route.capacity,
        onboard=route.onboard,
        min_insert_position=route.min_insert_position,
    )


def build_groups(
    requests: Sequence[Request],
    graph: ShareabilityGraph,
    route: RouteState,
    oracle: DistanceOracle,
    *,
    max_group_size: int,
    stats: GroupingStatistics | None = None,
) -> list[RequestGroup]:
    """Enumerate feasible request groups for one vehicle (Algorithm 2).

    Parameters
    ----------
    requests:
        Candidate requests (for SARD these are the requests that proposed to
        the vehicle; for GAS the whole batch).
    graph:
        Shareability graph used for the clique pruning rule and for the
        degree ("shareability") ordering of insertions.  Requests missing
        from the graph are treated as isolated nodes (degree 0, no clique
        partners), so they can only appear in singleton groups.
    route:
        The vehicle's current route state; every group's schedule extends it.
    oracle:
        Shortest-path oracle for insertion feasibility.
    max_group_size:
        Largest group size to enumerate (at most the remaining seats matter,
        but the capacity constraint is enforced by the insertion itself).

    Returns
    -------
    list[RequestGroup]
        All feasible groups of size 1 to ``max_group_size``, each carrying a
        feasible schedule extending the vehicle's current one.
    """
    stats = stats if stats is not None else GroupingStatistics()
    base_cost = base_route_cost(route, oracle)

    def degree(request_id: int) -> int:
        return graph.degree(request_id) if request_id in graph else 0

    # -- level 1: singleton groups ------------------------------------- #
    levels: list[dict[frozenset[int], RequestGroup]] = []
    singletons: dict[frozenset[int], RequestGroup] = {}
    unique_requests: dict[int, Request] = {r.request_id: r for r in requests}
    for request in unique_requests.values():
        outcome = best_insertion(route, request, oracle)
        if not outcome.feasible:
            stats.pruned_infeasible += 1
            continue
        group = RequestGroup(
            members=frozenset({request.request_id}),
            requests=(request,),
            schedule=outcome.schedule,
            delta_cost=outcome.delta_cost,
            total_cost=base_cost + outcome.delta_cost,
        )
        singletons[group.members] = group
        stats.groups_generated += 1
    levels.append(singletons)

    # -- levels 2..c: merge pairs of parents --------------------------- #
    for level in range(2, max_group_size + 1):
        previous = levels[-1]
        current: dict[frozenset[int], RequestGroup] = {}
        parents = list(previous.values())
        for i, left in enumerate(parents):
            for right in parents[i + 1:]:
                union = left.members | right.members
                if len(union) != level:
                    continue
                if union in current:
                    continue
                stats.merges_attempted += 1
                if not graph.is_clique(union):
                    stats.pruned_not_clique += 1
                    continue
                # Insert the member with the highest shareability into the
                # schedule of the parent group that excludes it.
                newcomer_id = max(union, key=lambda rid: (degree(rid), rid))
                parent_key = frozenset(union - {newcomer_id})
                parent = previous.get(parent_key)
                if parent is None:
                    # Lemma IV.1(a): every (l-1)-subset must be valid.
                    stats.pruned_infeasible += 1
                    continue
                newcomer = unique_requests.get(newcomer_id)
                if newcomer is None:
                    continue
                parent_route = _replace_schedule(route, parent.schedule)
                outcome = best_insertion(parent_route, newcomer, oracle)
                if not outcome.feasible:
                    stats.pruned_infeasible += 1
                    continue
                members = frozenset(union)
                group = RequestGroup(
                    members=members,
                    requests=tuple(unique_requests[rid] for rid in sorted(members)),
                    schedule=outcome.schedule,
                    delta_cost=parent.delta_cost + outcome.delta_cost,
                    total_cost=parent.total_cost + outcome.delta_cost,
                )
                current[members] = group
                stats.groups_generated += 1
        if not current:
            break
        levels.append(current)

    groups: list[RequestGroup] = []
    for level in levels:
        groups.extend(level.values())
    return groups


def best_group_by(
    groups: Iterable[RequestGroup],
    key: Callable[[RequestGroup], Any],
    *,
    prefer_larger: bool = True,
) -> RequestGroup | None:
    """Select the group minimising ``key`` (ties broken by size).

    Utility shared by the dispatchers: SARD minimises shareability loss, GAS
    maximises profit (pass a negated key).  With ``prefer_larger`` the larger
    group wins ties, which favours serving more requests.
    """
    best: RequestGroup | None = None
    best_key = None
    for group in groups:
        group_key = key(group)
        if best is None:
            best, best_key = group, group_key
            continue
        if group_key < best_key or (
            group_key == best_key
            and prefer_larger
            and group.size > best.size
        ):
            best, best_key = group, group_key
    return best
