"""Dynamic-world scenario engine: timed events, timelines, oracle refresh.

The static reproduction freezes the world at t=0; this package makes it
move.  A :class:`Scenario` bundles demand-surge windows (consumed by the
request generator) with a builder for timed :class:`WorldEvent` objects --
traffic waves, road closures and reopenings, rider cancellations, vehicle
shift starts and ends -- that a :class:`ScenarioTimeline` feeds into
:class:`~repro.simulation.engine.Simulator` between dispatch batches.  An
:class:`OracleRefreshPolicy` decides, per mutation burst, whether the
preprocessed routing structures are rebuilt immediately (``eager``), served
through an exact Dijkstra fallback under a staleness budget (``deferred``),
coalesced into one rebuild at the next quiet batch boundary (``coalesce``)
or absorbed incrementally -- snapshot swaps for exact reversions plus
re-contraction of only the affected hierarchy cells (``repair``); the
refresh overhead (rebuilds, repairs, fallback queries, stale-serving time)
lands in the run metrics.
"""

from .events import (
    CancelRequests,
    CloseEdges,
    ReopenEdges,
    RestoreEdges,
    ScaleEdges,
    VehicleShiftEnd,
    VehicleShiftStart,
    WorldEvent,
    WorldView,
    road_closure,
    traffic_wave,
)
from .presets import (
    CHAOS_PRESETS,
    SCENARIO_PRESETS,
    corridor_edges,
    make_chaos_config,
    make_scenario,
    make_scenario_workload,
    ring_edges,
    zone_edges,
)
from .refresh import (
    POLICY_NAMES,
    CoalescingRefreshPolicy,
    DeferredRefreshPolicy,
    EagerRefreshPolicy,
    OracleRefreshPolicy,
    RefreshStats,
    RepairRefreshPolicy,
    make_refresh_policy,
)
from .timeline import Scenario, ScenarioTimeline

__all__ = [
    "WorldEvent",
    "WorldView",
    "ScaleEdges",
    "RestoreEdges",
    "CloseEdges",
    "ReopenEdges",
    "CancelRequests",
    "VehicleShiftStart",
    "VehicleShiftEnd",
    "traffic_wave",
    "road_closure",
    "Scenario",
    "ScenarioTimeline",
    "OracleRefreshPolicy",
    "EagerRefreshPolicy",
    "DeferredRefreshPolicy",
    "CoalescingRefreshPolicy",
    "RepairRefreshPolicy",
    "RefreshStats",
    "make_refresh_policy",
    "POLICY_NAMES",
    "SCENARIO_PRESETS",
    "CHAOS_PRESETS",
    "make_chaos_config",
    "make_scenario",
    "make_scenario_workload",
    "zone_edges",
    "ring_edges",
    "corridor_edges",
]
