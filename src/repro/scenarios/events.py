"""Timed world events and the world view they mutate.

Events are the vocabulary of the dynamic-world scenario engine: each one is
scheduled at a point of simulated time and, when its time comes, mutates the
*world* -- the road network, the pending request pool or the fleet -- through
a :class:`WorldView` handed over by the simulator at the batch boundary.

Network-mutating events return the number of structural mutations they
performed so the simulator can hand the burst to the active
:class:`~repro.scenarios.refresh.OracleRefreshPolicy`, which decides whether
to rebuild the preprocessed routing structures now, serve the dirty window
through a Dijkstra fallback, or coalesce with later bursts.

Events may carry state across their lifetime (a closure remembers the edge
costs it removed so the paired reopening can restore them), so a timeline's
events must not be shared between simulation runs --
:meth:`~repro.scenarios.timeline.Scenario.make_timeline` builds fresh ones.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..exceptions import ConfigurationError, ScenarioError
from ..model.vehicle import Vehicle
from ..network.road_network import RoadNetwork

#: Event-kind strings recorded into the simulation event log (they mirror
#: :class:`repro.simulation.events.EventKind` values; strings keep this
#: package import-free of the simulation layer).
EDGES_RESCALED = "edges_rescaled"
ROAD_CLOSED = "road_closed"
ROAD_REOPENED = "road_reopened"
REQUEST_CANCELLED = "request_cancelled"
VEHICLE_SHIFT_STARTED = "vehicle_shift_started"
VEHICLE_SHIFT_ENDED = "vehicle_shift_ended"


@dataclass
class WorldView:
    """Mutable world state the simulator exposes to events at a boundary.

    ``metrics`` is the run's ``MetricsCollector`` and ``record`` appends to
    the simulation event log (both typed loosely so the scenario package
    does not import the simulation layer).
    """

    now: float
    network: RoadNetwork
    oracle: Any
    vehicles: list[Vehicle]
    vehicles_by_id: dict[int, Vehicle]
    pending: dict[int, Any]
    vehicle_index: Any
    metrics: Any
    #: ``record(kind, subject, other=None)`` -- event-log sink.
    record: Callable[..., None] = field(default=lambda *args, **kwargs: None)
    #: Original costs a :class:`RestoreEdges` could not write back because
    #: the edge was closed at restore time; the reopening applies them after
    #: re-adding the edge, so interleaved waves and closures still leave the
    #: shared network exactly as it started.  The simulator passes one dict
    #: per run.
    cost_restores: dict[tuple[int, int], float] = field(default_factory=dict)


@dataclass
class WorldEvent:
    """Base class: one timed world mutation.

    ``apply`` returns the number of *network* mutations performed (0 for
    demand/fleet events) so the refresh policy can size the burst.
    """

    time: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.time) or self.time < 0:
            raise ConfigurationError(
                f"event time must be finite and non-negative (got {self.time!r})"
            )

    def apply(self, world: WorldView) -> int:
        raise NotImplementedError


def _directed(
    edges: Sequence[tuple[int, int]], bidirectional: bool
) -> Iterator[tuple[int, int]]:
    """Expand undirected pairs into the directed edges an event touches.

    Each directed pair is yielded at most once, however the caller listed
    the edges -- ``[(u, v), (v, u)]`` with ``bidirectional=True`` must not
    scale an edge twice (its paired restoration would then replay both
    records in order and leave the second, scaled cost behind).
    """
    seen: set[tuple[int, int]] = set()
    for u, v in edges:
        for pair in ((u, v), (v, u)) if bidirectional else ((u, v),):
            if pair not in seen:
                seen.add(pair)
                yield pair


@dataclass
class ScaleEdges(WorldEvent):
    """Multiply the travel time of an edge set (traffic wave over a zone).

    A slowdown uses ``factor > 1``.  The pre-scaling costs are remembered on
    the event so a paired :class:`RestoreEdges` can restore free flow
    *exactly* (multiplying back by the inverse factor would leave ulp-level
    drift on the shared network run after run).  Edges missing at
    application time (e.g. closed by an earlier event) are skipped.
    """

    edges: Sequence[tuple[int, int]] = ()
    factor: float = 1.0
    bidirectional: bool = True
    #: ``(u, v, original_cost)`` triples actually scaled, filled on apply.
    scaled: list[tuple[int, int, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        if not math.isfinite(self.factor) or self.factor <= 0:
            raise ConfigurationError(
                f"scale factor must be finite and positive (got {self.factor!r})"
            )

    def apply(self, world: WorldView) -> int:
        network = world.network
        self.scaled = []
        for u, v in _directed(self.edges, self.bidirectional):
            if network.has_edge(u, v):
                cost = network.edge_cost(u, v)
                network.add_edge(u, v, cost * self.factor)
                self.scaled.append((u, v, cost))
        if self.scaled:
            world.record(EDGES_RESCALED, len(self.scaled))
        return len(self.scaled)


@dataclass
class RestoreEdges(WorldEvent):
    """Restore the exact pre-scaling costs of a paired :class:`ScaleEdges`."""

    scaling: ScaleEdges | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.scaling is None:
            raise ConfigurationError("RestoreEdges needs its paired ScaleEdges event")
        if self.time < self.scaling.time:
            raise ConfigurationError(
                f"restore at {self.time} precedes its scaling at {self.scaling.time}"
            )

    def apply(self, world: WorldView) -> int:
        network = world.network
        mutations = 0
        for u, v, cost in self.scaling.scaled:
            if network.has_edge(u, v):
                network.add_edge(u, v, cost)
                mutations += 1
            else:
                # The edge is closed right now, so its closure recorded the
                # *scaled* cost; park the original so the reopening restores
                # free flow instead of baking the slowdown in.
                world.cost_restores[(u, v)] = cost
        self.scaling.scaled = []
        if mutations:
            world.record(EDGES_RESCALED, mutations)
        return mutations


def traffic_wave(
    edges: Sequence[tuple[int, int]],
    factor: float,
    start: float,
    end: float,
    *,
    bidirectional: bool = True,
) -> list[WorldEvent]:
    """A slowdown over ``edges`` during ``[start, end)`` plus its recovery."""
    if end <= start:
        raise ConfigurationError(
            f"traffic wave window [{start}, {end}) must be non-empty"
        )
    scaling = ScaleEdges(start, edges, factor, bidirectional)
    return [scaling, RestoreEdges(end, scaling)]


@dataclass
class CloseEdges(WorldEvent):
    """Remove an edge set from the network (incident, bridge closure).

    The removed costs are remembered on the event so a paired
    :class:`ReopenEdges` can restore them.  An edge whose removal would leave
    its tail without outgoing or its head without incoming edges is skipped
    (a dead-ended node would strand vehicles), as are edges already absent.
    """

    edges: Sequence[tuple[int, int]] = ()
    bidirectional: bool = True
    #: ``(u, v, cost)`` triples actually removed, filled on apply.
    closed: list[tuple[int, int, float]] = field(default_factory=list)

    def apply(self, world: WorldView) -> int:
        network = world.network
        self.closed = []
        for u, v in _directed(self.edges, self.bidirectional):
            if not network.has_edge(u, v):
                continue
            if network.out_degree(u) <= 1 or sum(1 for _ in network.predecessors(v)) <= 1:
                continue
            cost = network.edge_cost(u, v)
            network.remove_edge(u, v)
            self.closed.append((u, v, cost))
        if self.closed:
            world.record(ROAD_CLOSED, len(self.closed))
        return len(self.closed)


@dataclass
class ReopenEdges(WorldEvent):
    """Restore the edges removed by a paired :class:`CloseEdges` event."""

    closure: CloseEdges | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.closure is None:
            raise ConfigurationError("ReopenEdges needs its paired CloseEdges event")
        if self.time < self.closure.time:
            raise ConfigurationError(
                f"reopening at {self.time} precedes its closure at {self.closure.time}"
            )

    def apply(self, world: WorldView) -> int:
        network = world.network
        mutations = 0
        for u, v, cost in self.closure.closed:
            if not network.has_edge(u, v):
                # A wave that receded while the edge was closed parked the
                # pre-wave cost; it wins over the closure-time (scaled) one.
                cost = world.cost_restores.pop((u, v), cost)
                network.add_edge(u, v, cost)
                mutations += 1
        self.closure.closed = []
        if mutations:
            world.record(ROAD_REOPENED, mutations)
        return mutations


def road_closure(
    edges: Sequence[tuple[int, int]],
    start: float,
    end: float | None = None,
    *,
    bidirectional: bool = True,
) -> list[WorldEvent]:
    """A closure of ``edges`` at ``start``, reopened at ``end`` (if given)."""
    closure = CloseEdges(start, edges, bidirectional)
    if end is None:
        return [closure]
    return [closure, ReopenEdges(end, closure)]


@dataclass
class CancelRequests(WorldEvent):
    """Riders cancelling: drop still-pending requests without penalty.

    Requests already assigned to a vehicle (or not yet released) are left
    untouched -- cancellation is only honoured while the request waits in
    the pending pool, mirroring the no-show window of production systems.
    """

    request_ids: Sequence[int] = ()

    def apply(self, world: WorldView) -> int:
        for request_id in self.request_ids:
            if request_id in world.pending:
                del world.pending[request_id]
                world.metrics.cancelled_requests += 1
                world.record(REQUEST_CANCELLED, request_id)
        return 0


@dataclass
class VehicleShiftStart(WorldEvent):
    """New vehicles coming on shift (morning ramp-up, surge reinforcements).

    Carries ``(vehicle_id, location, capacity)`` specs instead of vehicle
    objects so one scenario can be replayed across runs; the vehicles are
    materialised at application time with their clock set to ``now``.
    """

    specs: Sequence[tuple[int, int, int]] = ()

    def apply(self, world: WorldView) -> int:
        for vehicle_id, location, capacity in self.specs:
            if vehicle_id in world.vehicles_by_id:
                raise ScenarioError(
                    f"shift start reuses vehicle id {vehicle_id}; ids must be unique"
                )
            if location not in world.network:
                raise ScenarioError(
                    f"shift start places vehicle {vehicle_id} on unknown node {location}"
                )
            vehicle = Vehicle(
                vehicle_id=vehicle_id,
                location=location,
                capacity=capacity,
                _clock=world.now,
            )
            world.vehicles.append(vehicle)
            world.vehicles_by_id[vehicle_id] = vehicle
            x, y = world.network.position(location)
            world.vehicle_index.move(vehicle_id, x, y)
            world.record(VEHICLE_SHIFT_STARTED, vehicle_id)
        return 0


@dataclass
class VehicleShiftEnd(WorldEvent):
    """Vehicles going off shift: no new assignments, finish what they carry.

    Off-shift vehicles leave the dispatch candidate set and the spatial
    index immediately but keep driving their remaining schedule -- riders
    already onboard or committed are still delivered, exactly like a driver
    finishing their last trips after clocking out.  Unknown ids are ignored
    (the vehicle may never have come on shift in a scaled-down run).
    """

    vehicle_ids: Sequence[int] = ()

    def apply(self, world: WorldView) -> int:
        for vehicle_id in self.vehicle_ids:
            vehicle = world.vehicles_by_id.get(vehicle_id)
            if vehicle is None or not vehicle.on_shift:
                continue
            vehicle.on_shift = False
            world.vehicle_index.remove(vehicle_id)
            world.record(VEHICLE_SHIFT_ENDED, vehicle_id)
        return 0
