"""Oracle refresh policies for a mutating road network.

The preprocessed routing backends (``ch``, ``hub_label``) answer queries
from structures that a world event invalidates.  Rebuilding them is two to
three orders of magnitude more expensive than one query, so *when* to
rebuild is a real scheduling decision.  Three policies are provided:

``eager``
    Rebuild immediately after every mutation burst.  Queries are never
    served stale and never fall back, at the price of one full rebuild per
    burst -- the right choice for rare, isolated events.
``deferred``
    Switch the oracle to its fresh-CSR Dijkstra fallback (exact, just
    slower per query) and rebuild only once a staleness budget runs out:
    either ``max_stale_batches`` batch boundaries served on the fallback or
    ``fallback_query_budget`` fallback queries, whichever comes first.
    Amortises rebuilds over clustered events at a bounded query-time cost.
``coalesce``
    Like ``deferred``, but the rebuild happens at the first batch boundary
    with no further events due -- consecutive bursts (a traffic wave
    rolling over adjacent zones) collapse into a single rebuild.
``repair``
    Repair instead of rebuilding: every burst is absorbed immediately via
    :meth:`~repro.network.shortest_path.DistanceOracle.repair` -- a
    content-addressed snapshot swap for exact reversions (waves receding,
    roads reopening), incremental re-contraction of the affected cells of
    the contraction hierarchy otherwise, and a full rebuild only when the
    affected set exceeds ``max_affected_fraction`` of all nodes.  Queries
    are never served stale and never fall back, like ``eager``, at a
    fraction of the refresh cost.

Every policy records its decisions in :class:`RefreshStats`; the simulator
copies them into the run metrics (``oracle_rebuilds``,
``oracle_rebuild_seconds``, ``oracle_stale_seconds``,
``oracle_fallback_queries``, plus the ``repair`` policy's
``oracle_repairs`` / ``oracle_repair_seconds`` /
``oracle_nodes_recontracted`` / ``oracle_shortcuts_replaced``) so refresh
overhead is a first-class experimental output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..config import REFRESH_POLICIES, ScenarioConfig
from ..exceptions import ConfigurationError
from ..network.shortest_path import DistanceOracle
from ..observability.trace import get_tracer

#: Policy names accepted by :func:`make_refresh_policy` (mirrored by
#: :data:`repro.config.REFRESH_POLICIES` for the config layer).
POLICY_NAMES = REFRESH_POLICIES


@dataclass
class RefreshStats:
    """What a refresh policy did during one simulation run."""

    #: Mutation bursts reported by the simulator.
    mutation_bursts: int = 0
    #: Full backend rebuilds performed and their summed wall-clock cost.
    rebuilds: int = 0
    rebuild_seconds: float = 0.0
    #: Bursts whose rebuild was deferred (served via the Dijkstra fallback).
    deferred_bursts: int = 0
    #: Batch boundaries at which queries were served by the fallback.
    stale_batches: int = 0
    #: Wall-clock time between entering fallback mode and the rebuild that
    #: cleared it ("stale-serving time").
    stale_seconds: float = 0.0
    #: Bursts absorbed without a full rebuild (incremental re-contraction
    #: or snapshot swap) and their summed wall-clock cost.
    repairs: int = 0
    repair_seconds: float = 0.0
    #: Of those, bursts answered by an exact-reversion snapshot swap.
    snapshot_hits: int = 0
    #: Hierarchy nodes re-contracted and overlay effects (shortcut
    #: insertions / reductions) spliced across all incremental repairs.
    nodes_recontracted: int = 0
    shortcuts_replaced: int = 0
    _stale_since: float | None = field(default=None, repr=False)

    def mark_stale(self) -> None:
        """Start the stale-serving clock (idempotent)."""
        if self._stale_since is None:
            self._stale_since = time.perf_counter()

    def clear_stale(self) -> None:
        """Stop the stale-serving clock and accumulate the window."""
        if self._stale_since is not None:
            self.stale_seconds += time.perf_counter() - self._stale_since
            self._stale_since = None


class OracleRefreshPolicy:
    """Base policy: how the oracle follows a mutating network.

    The simulator drives the protocol at every batch boundary:

    1. ``on_batch_start(oracle, now, more_events_due)`` -- before applying
       this boundary's events (deferred rebuilds happen here);
    2. ``on_mutations(oracle, now, mutations)`` -- right after a non-empty
       mutation burst was applied;
    3. ``finalize(oracle)`` -- once, after the last batch, so the tail of
       the run (vehicles finishing their schedules) never sees a stale or
       fallback oracle.

    When a :class:`~repro.resilience.degrade.ResilienceManager` is attached
    (the simulator sets :attr:`resilience` at run start), every rebuild and
    repair is routed through its guarded wrappers: failures are retried
    with backoff and, once exhausted, degrade to the exact Dijkstra
    fallback instead of propagating -- the policy then keeps the stale
    clock running until a later refresh lands.
    """

    name = "base"

    def __init__(self) -> None:
        self.stats = RefreshStats()
        #: Optional :class:`~repro.resilience.degrade.ResilienceManager`
        #: guarding the refresh operations (``None`` = unguarded).
        self.resilience = None

    # -- protocol ------------------------------------------------------- #
    def on_batch_start(
        self, oracle: DistanceOracle, now: float, more_events_due: bool
    ) -> None:
        if oracle.serving_fallback:
            self.stats.stale_batches += 1

    def on_mutations(self, oracle: DistanceOracle, now: float, mutations: int) -> None:
        raise NotImplementedError

    def finalize(self, oracle: DistanceOracle) -> None:
        if oracle.serving_fallback or oracle.is_stale:
            self._rebuild(oracle)

    # -- shared helpers ------------------------------------------------- #
    def _rebuild(self, oracle: DistanceOracle) -> None:
        manager = self.resilience
        if manager is None:
            seconds = oracle.rebuild()
            self.stats.rebuild_seconds += seconds
            self.stats.rebuilds += 1
            self.stats.clear_stale()
            get_tracer().event(
                "oracle.rebuild",
                duration=seconds,
                policy=self.name,
                backend=oracle.backend_name,
                succeeded=True,
            )
            return
        seconds, rebuilt = manager.guarded_rebuild(oracle)
        self.stats.rebuild_seconds += seconds
        get_tracer().event(
            "oracle.rebuild",
            duration=seconds,
            policy=self.name,
            backend=oracle.backend_name,
            succeeded=rebuilt,
        )
        if rebuilt:
            self.stats.rebuilds += 1
            self.stats.clear_stale()
        else:
            # Retry exhausted (or breaker open): the oracle serves its exact
            # fresh-CSR fallback; the stale clock keeps running until the
            # breaker's recovery probe lands a rebuild.
            self.stats.mark_stale()

    def _defer(self, oracle: DistanceOracle) -> None:
        oracle.enable_fallback()
        self.stats.deferred_bursts += 1
        self.stats.mark_stale()
        get_tracer().event("oracle.defer", policy=self.name)


class EagerRefreshPolicy(OracleRefreshPolicy):
    """Rebuild after every mutation burst; queries never run stale."""

    name = "eager"

    def on_mutations(self, oracle: DistanceOracle, now: float, mutations: int) -> None:
        self.stats.mutation_bursts += 1
        self._rebuild(oracle)


class DeferredRefreshPolicy(OracleRefreshPolicy):
    """Serve dirty windows on the Dijkstra fallback under a staleness budget."""

    name = "deferred"

    def __init__(
        self, *, max_stale_batches: int = 3, fallback_query_budget: int = 2_000
    ) -> None:
        super().__init__()
        if max_stale_batches < 1:
            raise ConfigurationError("max_stale_batches must be at least 1")
        if fallback_query_budget < 0:
            raise ConfigurationError("fallback_query_budget must be non-negative")
        self.max_stale_batches = max_stale_batches
        self.fallback_query_budget = fallback_query_budget
        self._batches_stale = 0
        self._fallback_baseline = 0

    def on_batch_start(
        self, oracle: DistanceOracle, now: float, more_events_due: bool
    ) -> None:
        super().on_batch_start(oracle, now, more_events_due)
        if not oracle.serving_fallback:
            return
        self._batches_stale += 1
        served = oracle.stats.fallback_queries - self._fallback_baseline
        if self._batches_stale >= self.max_stale_batches or (
            served >= self.fallback_query_budget
        ):
            self._rebuild(oracle)
            self._batches_stale = 0

    def on_mutations(self, oracle: DistanceOracle, now: float, mutations: int) -> None:
        self.stats.mutation_bursts += 1
        if not oracle.serving_fallback:
            self._batches_stale = 0
            self._fallback_baseline = oracle.stats.fallback_queries
        self._defer(oracle)


class RepairRefreshPolicy(OracleRefreshPolicy):
    """Absorb every burst immediately via incremental CH repair.

    Behaves like ``eager`` from the queries' point of view -- never stale,
    never on the fallback -- but pays per burst only for the affected cells
    of the hierarchy (or an O(E log E) snapshot swap when the burst reverts
    to a recently seen network state).  Bursts whose affected set exceeds
    ``max_affected_fraction`` of all nodes fall back to a full rebuild,
    recorded under the ordinary rebuild counters.
    """

    name = "repair"

    def __init__(self, *, max_affected_fraction: float = 0.2) -> None:
        super().__init__()
        if not 0.0 < max_affected_fraction <= 1.0:
            raise ConfigurationError(
                "max_affected_fraction must be in (0, 1] "
                f"(got {max_affected_fraction})"
            )
        self.max_affected_fraction = max_affected_fraction

    def on_mutations(self, oracle: DistanceOracle, now: float, mutations: int) -> None:
        self.stats.mutation_bursts += 1
        self._repair(oracle)

    def finalize(self, oracle: DistanceOracle) -> None:
        if oracle.serving_fallback or oracle.is_stale:
            self._repair(oracle)

    def _repair(self, oracle: DistanceOracle) -> None:
        manager = self.resilience
        if manager is None:
            report = oracle.repair(
                max_affected_fraction=self.max_affected_fraction
            )
        else:
            report = manager.guarded_repair(
                oracle, max_affected_fraction=self.max_affected_fraction
            )
        if report.mode != "noop":
            get_tracer().event(
                "oracle.repair",
                duration=report.seconds,
                policy=self.name,
                backend=oracle.backend_name,
                mode=report.mode,
                nodes_recontracted=report.nodes_recontracted,
            )
        stats = self.stats
        if report.mode == "fallback":
            # Resilience ladder exhausted repair *and* rebuild: the oracle
            # serves its exact Dijkstra fallback until recovery.
            stats.deferred_bursts += 1
            stats.mark_stale()
            return
        if report.mode == "rebuilt":
            stats.rebuilds += 1
            stats.rebuild_seconds += report.seconds
        elif report.mode != "noop":
            stats.repairs += 1
            stats.repair_seconds += report.seconds
            stats.nodes_recontracted += report.nodes_recontracted
            stats.shortcuts_replaced += report.shortcuts_replaced
            if report.mode == "snapshot":
                stats.snapshot_hits += 1
        stats.clear_stale()


class CoalescingRefreshPolicy(OracleRefreshPolicy):
    """One rebuild per quiet batch boundary, folding adjacent bursts."""

    name = "coalesce"

    def on_batch_start(
        self, oracle: DistanceOracle, now: float, more_events_due: bool
    ) -> None:
        super().on_batch_start(oracle, now, more_events_due)
        if oracle.serving_fallback and not more_events_due:
            self._rebuild(oracle)

    def on_mutations(self, oracle: DistanceOracle, now: float, mutations: int) -> None:
        self.stats.mutation_bursts += 1
        self._defer(oracle)


def make_refresh_policy(
    name: str | None = None, *, config: ScenarioConfig | None = None
) -> OracleRefreshPolicy:
    """Instantiate a refresh policy by name (or from a scenario config)."""
    if config is not None and name is None:
        name = config.refresh_policy
    key = (name or "coalesce").lower()
    if key == "eager":
        return EagerRefreshPolicy()
    if key == "deferred":
        if config is not None:
            return DeferredRefreshPolicy(
                max_stale_batches=config.max_stale_batches,
                fallback_query_budget=config.fallback_query_budget,
            )
        return DeferredRefreshPolicy()
    if key == "coalesce":
        return CoalescingRefreshPolicy()
    if key == "repair":
        if config is not None:
            return RepairRefreshPolicy(
                max_affected_fraction=config.repair_max_fraction
            )
        return RepairRefreshPolicy()
    raise ConfigurationError(
        f"unknown refresh policy {name!r}; choose from {POLICY_NAMES}"
    )
