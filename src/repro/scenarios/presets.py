"""Named dynamic-world scenarios: rush hour, bridge closure, stadium surge.

Each preset is a factory deriving a :class:`~repro.scenarios.timeline.Scenario`
from a concrete road network and request horizon: geographic zones become
edge sets, horizon fractions become event times, and the intensity knobs come
from a :class:`~repro.config.ScenarioConfig`.  The presets exercise every
event type of the engine:

* ``rush_hour`` -- a traffic wave rolling outward from downtown (core zone
  slows first and hardest, the midtown ring follows milder) plus an inbound
  commuter demand surge.
* ``bridge_closure`` -- the central segment of the main west-east corridor
  closes mid-run and reopens later; routing must detour exactly while the
  closure holds.
* ``stadium_surge`` -- an event venue empties: outbound demand surge around
  the stadium, localised congestion, reinforcement vehicles on a temporary
  shift, and a wave of rider cancellations when queues build up.

:func:`make_scenario_workload` bundles the whole thing: it builds the city,
derives the scenario from it, generates the surge-modulated request trace
and returns the workload plus the scenario ready for
:class:`~repro.simulation.engine.Simulator`.
"""

from __future__ import annotations

import math
# DET002 audit: every draw below flows through a seeded random.Random
# stream; the module-global generator is never called (repro-lint enforced).
import random
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from ..config import ChaosConfig, DemandSurge, ScenarioConfig
from ..exceptions import ConfigurationError
from ..network.road_network import RoadNetwork
from ..network.shortest_path import DistanceOracle
from .events import (
    CancelRequests,
    VehicleShiftEnd,
    VehicleShiftStart,
    WorldEvent,
    road_closure,
    traffic_wave,
)
from .timeline import Scenario

if TYPE_CHECKING:
    from ..workloads.presets import Workload

#: Vehicle ids of scenario-spawned shift vehicles start here, far above any
#: workload-generated fleet.
SHIFT_VEHICLE_ID_BASE = 100_000


def zone_edges(
    network: RoadNetwork, cx: float, cy: float, radius: float
) -> list[tuple[int, int]]:
    """Undirected edge pairs whose midpoint lies within the given disk."""
    radius_sq = radius * radius
    seen: set[tuple[int, int]] = set()
    for u, v, _ in network.edges():
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        ux, uy = network.position(u)
        vx, vy = network.position(v)
        mx, my = (ux + vx) / 2.0, (uy + vy) / 2.0
        if (mx - cx) ** 2 + (my - cy) ** 2 <= radius_sq:
            seen.add(key)
    return sorted(seen)


def ring_edges(
    network: RoadNetwork, cx: float, cy: float, inner: float, outer: float
) -> list[tuple[int, int]]:
    """Undirected edge pairs whose midpoint lies in the ``[inner, outer)`` annulus."""
    outer_set = set(zone_edges(network, cx, cy, outer))
    inner_set = set(zone_edges(network, cx, cy, inner))
    return sorted(outer_set - inner_set)


def _geometry(network: RoadNetwork) -> tuple[float, float, float]:
    """Center and characteristic extent of the network's bounding box."""
    min_x, min_y, max_x, max_y = network.bounding_box()
    extent = min(max_x - min_x, max_y - min_y)
    return (min_x + max_x) / 2.0, (min_y + max_y) / 2.0, extent


def corridor_edges(network: RoadNetwork, *, span: float = 0.2) -> list[tuple[int, int]]:
    """The middle segment of the main west-east shortest-path corridor.

    Routes a plain Dijkstra between the westmost and eastmost nodes and
    returns the consecutive node pairs of the central ``span`` fraction of
    that path -- the network's "bridge": closing it forces every crossing
    trip onto a detour.
    """
    nodes = list(network.nodes())
    west = min(nodes, key=lambda n: network.position(n)[0])
    east = max(nodes, key=lambda n: network.position(n)[0])
    path = DistanceOracle(network, cache_size=0).path(west, east)
    if len(path) < 4:
        raise ConfigurationError(
            "network too small to derive a closure corridor (path has "
            f"{len(path)} nodes)"
        )
    lo = max(int(len(path) * (0.5 - span / 2)), 0)
    hi = min(max(int(len(path) * (0.5 + span / 2)), lo + 2), len(path))
    segment = path[lo:hi]
    return list(zip(segment, segment[1:]))


# --------------------------------------------------------------------- #
# preset factories
# --------------------------------------------------------------------- #
def _rush_hour(
    network: RoadNetwork,
    horizon: float,
    config: ScenarioConfig,
    num_requests: int,
) -> Scenario:
    cx, cy, extent = _geometry(network)
    core = zone_edges(network, cx, cy, 0.25 * extent)
    ring = ring_edges(network, cx, cy, 0.25 * extent, 0.45 * extent)
    center_node = network.nearest_node(cx, cy)
    factor = config.slowdown_factor

    def build() -> list[WorldEvent]:
        events: list[WorldEvent] = []
        # The wave rolls outward: the core congests first and hardest, the
        # ring follows a little later at a milder factor, and both recover
        # in the same order.
        events += traffic_wave(core, factor, 0.15 * horizon, 0.60 * horizon)
        events += traffic_wave(
            ring, math.sqrt(factor), 0.25 * horizon, 0.70 * horizon
        )
        return events

    surges = (
        DemandSurge(
            start=0.15 * horizon,
            end=0.60 * horizon,
            rate_multiplier=config.surge_multiplier * 0.7,
            center=center_node,
            attraction=0.5,
            direction="inbound",
        ),
    )
    return Scenario(
        name="rush_hour",
        horizon=horizon,
        surges=surges,
        events_builder=build,
        config=config,
        description=(
            "traffic wave rolling outward from downtown plus an inbound "
            "commuter demand surge"
        ),
    )


def _bridge_closure(
    network: RoadNetwork,
    horizon: float,
    config: ScenarioConfig,
    num_requests: int,
) -> Scenario:
    corridor = corridor_edges(network)
    start = config.closure_start * horizon
    end = config.closure_end * horizon

    def build() -> list[WorldEvent]:
        return road_closure(corridor, start, end)

    return Scenario(
        name="bridge_closure",
        horizon=horizon,
        events_builder=build,
        config=config,
        description=(
            "central west-east corridor closes mid-run and reopens; all "
            "crossing trips must detour while it holds"
        ),
    )


def _stadium_surge(
    network: RoadNetwork,
    horizon: float,
    config: ScenarioConfig,
    num_requests: int,
) -> Scenario:
    min_x, min_y, max_x, max_y = network.bounding_box()
    sx = min_x + 0.72 * (max_x - min_x)
    sy = min_y + 0.72 * (max_y - min_y)
    stadium = network.nearest_node(sx, sy)
    stadium_x, stadium_y = network.position(stadium)
    _, _, extent = _geometry(network)
    around = zone_edges(network, stadium_x, stadium_y, 0.2 * extent)
    rng_seed = config.seed

    def build() -> list[WorldEvent]:
        rng = random.Random(rng_seed)
        events: list[WorldEvent] = []
        # Congestion around the venue while the crowd pours out.
        events += traffic_wave(
            around, config.slowdown_factor, 0.42 * horizon, 0.78 * horizon
        )
        # Reinforcement vehicles on a temporary shift near the stadium.
        specs = []
        for offset in range(6):
            jitter_x = stadium_x + rng.gauss(0.0, 0.1 * extent)
            jitter_y = stadium_y + rng.gauss(0.0, 0.1 * extent)
            specs.append(
                (
                    SHIFT_VEHICLE_ID_BASE + offset,
                    network.nearest_node(jitter_x, jitter_y),
                    4,
                )
            )
        events.append(VehicleShiftStart(0.35 * horizon, specs))
        events.append(
            VehicleShiftEnd(0.90 * horizon, [spec[0] for spec in specs])
        )
        # Riders bailing out when the queue builds up mid-surge.
        if num_requests > 0:
            cancelled = rng.sample(
                range(num_requests), max(num_requests // 30, 1)
            )
            events.append(CancelRequests(0.55 * horizon, sorted(cancelled)))
        return events

    surges = (
        DemandSurge(
            start=0.40 * horizon,
            end=0.75 * horizon,
            rate_multiplier=config.surge_multiplier,
            center=stadium,
            attraction=0.8,
            direction="outbound",
        ),
    )
    return Scenario(
        name="stadium_surge",
        horizon=horizon,
        surges=surges,
        events_builder=build,
        config=config,
        description=(
            "event venue empties: outbound surge, local congestion, "
            "reinforcement shift vehicles and rider cancellations"
        ),
    )


#: Registry of scenario factories keyed by preset name.
SCENARIO_PRESETS: dict[
    str, Callable[[RoadNetwork, float, ScenarioConfig, int], Scenario]
] = {
    "rush_hour": _rush_hour,
    "bridge_closure": _bridge_closure,
    "stadium_surge": _stadium_surge,
}


def make_scenario(
    name: str,
    network: RoadNetwork,
    *,
    horizon: float,
    config: ScenarioConfig | None = None,
    num_requests: int = 0,
) -> Scenario:
    """Derive a named scenario from a concrete network and horizon."""
    key = name.lower()
    if key not in SCENARIO_PRESETS:
        raise ConfigurationError(
            f"unknown scenario preset {name!r}; choose from {sorted(SCENARIO_PRESETS)}"
        )
    if not math.isfinite(horizon) or horizon <= 0:
        raise ConfigurationError(f"horizon must be finite and positive (got {horizon!r})")
    return SCENARIO_PRESETS[key](
        network, horizon, config or ScenarioConfig(), num_requests
    )


#: Named fault-injection profiles for chaos runs (see
#: :mod:`repro.resilience`).  ``flaky_oracle`` models an unreliable refresh
#: path -- rebuilds and repairs fail often enough to exercise retries and
#: the occasional breaker trip, refreshes sometimes corrupt the structures
#: (caught by the invariant probes) and a few queries spike.
#: ``oracle_meltdown`` is the worst-case drill: most refresh operations
#: fail, corruption is frequent and query spikes are long enough to overrun
#: the batch budget and degrade the dispatcher.
CHAOS_PRESETS: dict[str, ChaosConfig] = {
    "flaky_oracle": ChaosConfig(
        rebuild_failure_rate=0.25,
        repair_failure_rate=0.30,
        corruption_rate=0.25,
        corruption_factor=1.07,
        query_spike_rate=0.01,
        spike_seconds=0.05,
    ),
    "oracle_meltdown": ChaosConfig(
        rebuild_failure_rate=0.55,
        repair_failure_rate=0.85,
        corruption_rate=0.75,
        corruption_factor=1.25,
        query_spike_rate=0.05,
        spike_seconds=0.08,
    ),
}


def make_chaos_config(name: str, **overrides: Any) -> ChaosConfig:
    """Look up a named chaos preset, optionally overriding its knobs."""
    key = name.lower()
    if key not in CHAOS_PRESETS:
        raise ConfigurationError(
            f"unknown chaos preset {name!r}; choose from {sorted(CHAOS_PRESETS)}"
        )
    config = CHAOS_PRESETS[key]
    return config.with_overrides(**overrides) if overrides else config


def make_scenario_workload(
    preset: str = "nyc",
    scenario: str = "bridge_closure",
    *,
    scale: float = 1.0,
    vehicle_scale: float = 1.0,
    city_scale: float = 0.7,
    scenario_config: ScenarioConfig | None = None,
    workload_overrides: dict[str, Any] | None = None,
    simulation_overrides: dict[str, Any] | None = None,
) -> tuple[Workload, Scenario]:
    """Build a workload preset together with a scenario derived from its city.

    The city network is built first so the scenario factory can derive zones
    and corridors from it; the scenario's demand surges then modulate the
    request generator of :func:`repro.workloads.presets.make_workload`.
    Returns ``(workload, scenario)``.
    """
    from ..network.generators import make_city
    from ..workloads.presets import make_workload, resolve_preset_configs

    city_name, workload_config, _ = resolve_preset_configs(
        preset,
        scale=scale,
        vehicle_scale=vehicle_scale,
        workload_overrides=workload_overrides,
        simulation_overrides=simulation_overrides,
    )
    network = make_city(city_name, scale=city_scale)
    built = make_scenario(
        scenario,
        network,
        horizon=workload_config.effective_horizon,
        config=scenario_config,
        num_requests=workload_config.num_requests,
    )
    workload = make_workload(
        preset,
        scale=scale,
        vehicle_scale=vehicle_scale,
        city_scale=city_scale,
        workload_overrides=workload_overrides,
        simulation_overrides=simulation_overrides,
        network=network,
        surges=built.surges,
    )
    return workload, built
