"""The scenario timeline: ordered world events fed to the simulator.

A :class:`ScenarioTimeline` is a time-sorted queue of
:class:`~repro.scenarios.events.WorldEvent` objects.  The simulator drains
the events due at every batch boundary, applies them to its
:class:`~repro.scenarios.events.WorldView` and reports the resulting
mutation burst to the refresh policy; an optional ``on_applied`` probe fires
after each burst is made consistent, which is how the benchmarks assert
cost parity with a fresh Dijkstra after every event.

A :class:`Scenario` is the *replayable* description: demand-surge windows
(consumed by the request generator before the run) plus an event builder
producing fresh event objects per run (events carry state, e.g. a closure's
removed costs, so they must not be shared between runs).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..config import DemandSurge, ScenarioConfig
from .events import WorldEvent, WorldView


class ScenarioTimeline:
    """Time-ordered queue of world events with an application probe."""

    def __init__(
        self,
        events: Sequence[WorldEvent] = (),
        *,
        on_applied: Callable[[WorldView], None] | None = None,
    ) -> None:
        self._events = sorted(events, key=lambda event: event.time)
        self._cursor = 0
        #: Events already handed out, in application order.
        self.applied: list[WorldEvent] = []
        #: Probe invoked (with the world view) after a due burst has been
        #: applied *and* the refresh policy has made the oracle consistent.
        self.on_applied = on_applied

    def has_due(self, now: float) -> bool:
        """True when at least one event is due at or before ``now``."""
        return self._cursor < len(self._events) and self._events[self._cursor].time <= now

    def pop_due(self, now: float) -> list[WorldEvent]:
        """Remove and return every event due at or before ``now``, in order."""
        due: list[WorldEvent] = []
        while self.has_due(now):
            due.append(self._events[self._cursor])
            self._cursor += 1
        self.applied.extend(due)
        return due

    def notify(self, world: WorldView) -> None:
        """Fire the ``on_applied`` probe (no-op when unset)."""
        if self.on_applied is not None:
            self.on_applied(world)

    @property
    def remaining(self) -> int:
        """Number of events not yet handed out."""
        return len(self._events) - self._cursor

    def __len__(self) -> int:
        return len(self._events)


@dataclass
class Scenario:
    """A replayable dynamic-world scenario.

    ``surges`` modulate the request generator *before* the run (arrival
    intensity and hotspot anchoring); ``events_builder`` produces the
    runtime timeline.  ``config`` keeps the knobs the preset was built from,
    including the refresh policy the run should use.
    """

    name: str
    #: Request horizon the event times were derived from, in seconds.
    horizon: float
    surges: tuple[DemandSurge, ...] = ()
    events_builder: Callable[[], list[WorldEvent]] = list
    config: ScenarioConfig = field(default_factory=ScenarioConfig)
    description: str = ""

    def make_timeline(
        self, *, on_applied: Callable[[WorldView], None] | None = None
    ) -> ScenarioTimeline:
        """Build a fresh timeline (fresh event objects) for one run."""
        return ScenarioTimeline(self.events_builder(), on_applied=on_applied)
