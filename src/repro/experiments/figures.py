"""One entry point per paper artefact (Figures 8-17, Tables V-VI, studies).

Every function builds scaled-down instances of the paper's experiments and
returns structured results.  The corresponding benchmark module prints the
same rows/series the paper reports; absolute values differ (Python simulator
versus the authors' C++ testbed) but the comparison shape is preserved.

The paper's parameter grids are exposed as ``PAPER_*`` constants; benchmark
modules typically pass a reduced subset to keep wall-clock time reasonable.
"""

from __future__ import annotations

import math
# DET002 audit: every draw below flows through a seeded random.Random
# stream; the module-global generator is never called (repro-lint enforced).
import random
from dataclasses import dataclass, field
from collections.abc import Sequence

from ..config import SimulationConfig
from ..dispatch.sard import SARDDispatcher
from ..insertion.kinetic_tree import KineticTreeScheduler
from ..insertion.linear_insertion import insert_sequence
from ..model.schedule import Schedule
from ..model.vehicle import RouteState
from ..shareability.angle_pruning import expected_sharing_probability, fit_lognormal
from ..shareability.builder import DynamicShareabilityGraphBuilder
from ..shareability.graph import ShareabilityGraph
from ..workloads.presets import Workload, make_workload
from .harness import DEFAULT_ALGORITHMS, ExperimentRunner, ResultRow, SweepResult

# --------------------------------------------------------------------------- #
# the paper's parameter grids (Tables III and IV)
# --------------------------------------------------------------------------- #
PAPER_NUM_REQUESTS = (10_000, 50_000, 100_000, 150_000, 200_000, 250_000)
PAPER_NUM_VEHICLES = (1_000, 2_000, 3_000, 4_000, 5_000)
PAPER_CAPACITIES = (2, 3, 4, 5, 6)
PAPER_GAMMAS = (1.2, 1.3, 1.5, 1.8, 2.0)
PAPER_PENALTIES = (2, 5, 10, 20, 30)
PAPER_BATCH_PERIODS = (1, 3, 5, 7, 9)
PAPER_CAPACITY_SIGMAS = (0.0, 0.5, 1.0, 1.5, 2.0)

PAPER_CAINIAO_NUM_REQUESTS = (50_000, 75_000, 100_000, 125_000, 150_000)
PAPER_CAINIAO_NUM_VEHICLES = (3_000, 3_500, 4_000, 4_500, 5_000)
PAPER_CAINIAO_GAMMAS = (1.8, 1.9, 2.0, 2.1, 2.2)
PAPER_CAINIAO_BATCH_PERIODS = (3, 4, 5, 6, 7)

#: Batch-mode algorithms only (Figure 13 varies the batching period).
BATCH_ALGORITHMS = ("RTV", "GAS", "SARD")

#: Default scaled-down grids used by quick benchmark runs.
QUICK_VALUES = {
    "num_vehicles": (1_000, 3_000, 5_000),
    "num_requests": (10_000, 100_000, 250_000),
    "gamma": (1.2, 1.5, 2.0),
    "capacity": (2, 3, 6),
    "penalty_coefficient": (2, 10, 30),
    "batch_period": (1, 3, 9),
    "capacity_sigma": (0.0, 1.0, 2.0),
}


@dataclass
class FigureResult:
    """Results of one figure: one sweep per dataset."""

    figure: str
    parameter: str
    sweeps: dict[str, SweepResult] = field(default_factory=dict)

    def all_rows(self) -> list[ResultRow]:
        """Every row across datasets (used by reporting and tests)."""
        rows: list[ResultRow] = []
        for sweep in self.sweeps.values():
            rows.extend(sweep.rows)
        return rows


def _default_runner(
    request_fraction: float, algorithms: Sequence[str] | None
) -> ExperimentRunner:
    return ExperimentRunner(
        algorithms=tuple(algorithms or DEFAULT_ALGORITHMS),
        request_fraction=request_fraction,
        vehicle_fraction=0.04,
        city_scale=0.7,
    )


def _sweep_figure(
    figure: str,
    parameter: str,
    values: Sequence[float],
    *,
    presets: Sequence[str],
    request_fraction: float,
    algorithms: Sequence[str] | None,
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    runner = runner or _default_runner(request_fraction, algorithms)
    result = FigureResult(figure=figure, parameter=parameter)
    for preset in presets:
        result.sweeps[preset] = runner.sweep(
            preset,
            parameter,
            values,
            label=f"{figure} ({preset.upper()})",
            algorithms=algorithms,
        )
    return result


# --------------------------------------------------------------------------- #
# Figures 8-13: the six main sweeps on CHD and NYC
# --------------------------------------------------------------------------- #
def figure8(
    *,
    values: Sequence[float] = QUICK_VALUES["num_vehicles"],
    presets: Sequence[str] = ("chd", "nyc"),
    request_fraction: float = 0.0025,
    algorithms: Sequence[str] | None = None,
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """Figure 8: unified cost / service rate / running time vs fleet size."""
    return _sweep_figure(
        "Figure 8", "num_vehicles", values,
        presets=presets, request_fraction=request_fraction, algorithms=algorithms, runner=runner,
    )


def figure9(
    *,
    values: Sequence[float] = QUICK_VALUES["num_requests"],
    presets: Sequence[str] = ("chd", "nyc"),
    request_fraction: float = 0.0025,
    algorithms: Sequence[str] | None = None,
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """Figure 9: metrics vs number of requests."""
    return _sweep_figure(
        "Figure 9", "num_requests", values,
        presets=presets, request_fraction=request_fraction, algorithms=algorithms, runner=runner,
    )


def figure10(
    *,
    values: Sequence[float] = QUICK_VALUES["gamma"],
    presets: Sequence[str] = ("chd", "nyc"),
    request_fraction: float = 0.0025,
    algorithms: Sequence[str] | None = None,
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """Figure 10: metrics vs deadline parameter gamma."""
    return _sweep_figure(
        "Figure 10", "gamma", values,
        presets=presets, request_fraction=request_fraction, algorithms=algorithms, runner=runner,
    )


def figure11(
    *,
    values: Sequence[float] = QUICK_VALUES["capacity"],
    presets: Sequence[str] = ("chd", "nyc"),
    request_fraction: float = 0.0025,
    algorithms: Sequence[str] | None = None,
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """Figure 11: metrics vs vehicle capacity."""
    return _sweep_figure(
        "Figure 11", "capacity", values,
        presets=presets, request_fraction=request_fraction, algorithms=algorithms, runner=runner,
    )


def figure12(
    *,
    values: Sequence[float] = QUICK_VALUES["penalty_coefficient"],
    presets: Sequence[str] = ("chd", "nyc"),
    request_fraction: float = 0.0025,
    algorithms: Sequence[str] | None = None,
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """Figure 12: metrics vs penalty coefficient."""
    return _sweep_figure(
        "Figure 12", "penalty_coefficient", values,
        presets=presets, request_fraction=request_fraction, algorithms=algorithms, runner=runner,
    )


def figure13(
    *,
    values: Sequence[float] = QUICK_VALUES["batch_period"],
    presets: Sequence[str] = ("chd", "nyc"),
    request_fraction: float = 0.0025,
    algorithms: Sequence[str] | None = BATCH_ALGORITHMS,
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """Figure 13: batch-mode algorithms vs batching period Delta."""
    return _sweep_figure(
        "Figure 13", "batch_period", values,
        presets=presets, request_fraction=request_fraction, algorithms=algorithms, runner=runner,
    )


# --------------------------------------------------------------------------- #
# Figure 14 / Appendix A: memory consumption under default parameters
# --------------------------------------------------------------------------- #
def figure14_memory(
    *,
    presets: Sequence[str] = ("chd", "nyc"),
    request_fraction: float = 0.0025,
    algorithms: Sequence[str] | None = None,
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """Figure 14: estimated memory consumption per algorithm."""
    runner = runner or _default_runner(request_fraction, algorithms)
    result = FigureResult(figure="Figure 14", parameter="memory")
    algorithms = tuple(algorithms or runner.algorithms)
    for preset in presets:
        sweep = runner.sweep(
            preset,
            "penalty_coefficient",
            (10.0,),
            label=f"Figure 14 ({preset.upper()})",
            algorithms=algorithms,
        )
        result.sweeps[preset] = sweep
    return result


# --------------------------------------------------------------------------- #
# Figure 15: the five Cainiao sweeps
# --------------------------------------------------------------------------- #
def figure15(
    *,
    request_fraction: float = 0.0025,
    algorithms: Sequence[str] | None = (
        "pruneGDP", "TicketAssign+", "RTV", "GAS", "SARD",
    ),
    runner: ExperimentRunner | None = None,
    quick: bool = True,
) -> dict[str, FigureResult]:
    """Figure 15: vehicles / requests / gamma / penalty / batch period on Cainiao."""
    runner = runner or _default_runner(request_fraction, algorithms)
    grids = {
        "num_vehicles": (3_000, 4_000, 5_000) if quick else PAPER_CAINIAO_NUM_VEHICLES,
        "num_requests": (50_000, 100_000, 150_000) if quick else PAPER_CAINIAO_NUM_REQUESTS,
        "gamma": (1.8, 2.0, 2.2) if quick else PAPER_CAINIAO_GAMMAS,
        "penalty_coefficient": (2, 10, 30) if quick else PAPER_PENALTIES,
        "batch_period": (3, 5, 7) if quick else PAPER_CAINIAO_BATCH_PERIODS,
    }
    results: dict[str, FigureResult] = {}
    for parameter, values in grids.items():
        results[parameter] = _sweep_figure(
            f"Figure 15 ({parameter})", parameter, values,
            presets=("cainiao",), request_fraction=request_fraction, algorithms=algorithms, runner=runner,
        )
    return results


# --------------------------------------------------------------------------- #
# Figures 16 and 17: capacity and capacity-variance sweeps
# --------------------------------------------------------------------------- #
def figure16(
    *,
    capacity_values: Sequence[float] = QUICK_VALUES["capacity"],
    sigma_values: Sequence[float] = QUICK_VALUES["capacity_sigma"],
    request_fraction: float = 0.0025,
    algorithms: Sequence[str] | None = (
        "pruneGDP", "TicketAssign+", "RTV", "GAS", "SARD",
    ),
    runner: ExperimentRunner | None = None,
) -> dict[str, FigureResult]:
    """Figure 16: capacity and capacity-variance sweeps on Cainiao."""
    runner = runner or _default_runner(request_fraction, algorithms)
    return {
        "capacity": _sweep_figure(
            "Figure 16 (capacity)", "capacity", capacity_values,
            presets=("cainiao",), request_fraction=request_fraction, algorithms=algorithms, runner=runner,
        ),
        "capacity_sigma": _sweep_figure(
            "Figure 16 (sigma)", "capacity_sigma", sigma_values,
            presets=("cainiao",), request_fraction=request_fraction, algorithms=algorithms, runner=runner,
        ),
    }


def figure17(
    *,
    values: Sequence[float] = QUICK_VALUES["capacity_sigma"],
    presets: Sequence[str] = ("chd", "nyc"),
    request_fraction: float = 0.0025,
    algorithms: Sequence[str] | None = None,
    runner: ExperimentRunner | None = None,
) -> FigureResult:
    """Figure 17: capacity-variance sweep on CHD and NYC."""
    return _sweep_figure(
        "Figure 17", "capacity_sigma", values,
        presets=presets, request_fraction=request_fraction, algorithms=algorithms, runner=runner,
    )


# --------------------------------------------------------------------------- #
# Tables V and VI: the angle pruning ablation
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class PruningRow:
    """One row of the angle-pruning ablation tables."""

    dataset: str
    method: str
    unified_cost: float
    service_rate: float
    shortest_path_queries: int
    running_time: float


def angle_pruning_ablation(
    *,
    presets: Sequence[str] = ("chd", "nyc"),
    request_fraction: float = 0.0025,
    vehicle_fraction: float = 0.04,
    runner: ExperimentRunner | None = None,
) -> list[PruningRow]:
    """Tables V/VI: SARD without pruning versus SARD-O with angle pruning."""
    runner = runner or _default_runner(request_fraction, None)
    rows: list[PruningRow] = []
    for preset in presets:
        workload = make_workload(
            preset,
            city_scale=runner.city_scale,
            workload_overrides={
                "num_requests": max(int(100_000 * request_fraction), 1),
                "num_vehicles": max(int(3_000 * vehicle_fraction), 1),
            },
        )
        for method, dispatcher in (
            ("SARD", SARDDispatcher.without_angle_pruning()),
            ("SARD-O", SARDDispatcher.with_angle_pruning()),
        ):
            run = runner.run_single(workload, method, dispatcher=dispatcher)
            rows.append(
                PruningRow(
                    dataset=workload.name,
                    method=method,
                    unified_cost=run.metrics.unified_cost,
                    service_rate=run.metrics.service_rate,
                    shortest_path_queries=run.metrics.shortest_path_queries,
                    running_time=run.metrics.dispatch_seconds,
                )
            )
    return rows


def table5_angle_pruning(
    *, request_fraction: float = 0.0025, runner: ExperimentRunner | None = None
) -> list[PruningRow]:
    """Table V: the angle-pruning ablation on the Cainiao dataset."""
    return angle_pruning_ablation(
        presets=("cainiao",), request_fraction=request_fraction, runner=runner
    )


def table6_angle_pruning(
    *, request_fraction: float = 0.0025, runner: ExperimentRunner | None = None
) -> list[PruningRow]:
    """Table VI: the angle-pruning ablation on CHD and NYC."""
    return angle_pruning_ablation(
        presets=("chd", "nyc"), request_fraction=request_fraction, runner=runner
    )


# --------------------------------------------------------------------------- #
# Section IV-A: shareability-ordered insertion study
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class InsertionOrderStudy:
    """Fractions of sampled groups whose linear insertion matched the optimum."""

    dataset: str
    group_size: int
    samples: int
    release_order_optimal: float
    shareability_order_optimal: float


def insertion_order_study(
    *,
    preset: str = "nyc",
    num_requests: int = 400,
    group_sizes: Sequence[int] = (3, 4),
    samples_per_size: int = 40,
    seed: int = 5,
) -> list[InsertionOrderStudy]:
    """Reproduce the Section IV-A claim: ordering insertions by ascending
    shareability raises the probability that linear insertion reaches the
    optimal (kinetic-tree) schedule."""
    workload = make_workload(
        preset, city_scale=0.7, workload_overrides={"num_requests": num_requests}
    )
    oracle = workload.fresh_oracle()
    config = workload.simulation_config.with_overrides(capacity=6)
    builder = DynamicShareabilityGraphBuilder(
        network=workload.network, oracle=oracle, config=config
    )
    builder.update(workload.requests)
    graph = builder.graph
    kinetic = KineticTreeScheduler(oracle)
    rng = random.Random(seed)
    results: list[InsertionOrderStudy] = []
    request_by_id = {r.request_id: r for r in workload.requests}
    for size in group_sizes:
        release_hits = 0
        shareability_hits = 0
        samples = 0
        attempts = 0
        while samples < samples_per_size and attempts < samples_per_size * 60:
            attempts += 1
            seed_request = rng.choice(workload.requests)
            clique = _sample_clique(graph, seed_request.request_id, size, rng)
            if clique is None:
                continue
            requests = [request_by_id[rid] for rid in clique]
            anchor = min(requests, key=lambda r: r.release_time)
            route = RouteState(
                vehicle_id=-1,
                origin=anchor.source,
                departure_time=anchor.release_time,
                schedule=Schedule.empty(),
                capacity=config.capacity,
                onboard=0,
            )
            optimal = kinetic.optimal_cost(route, requests)
            if math.isinf(optimal):
                continue
            by_release = sorted(requests, key=lambda r: r.release_time)
            by_shareability = sorted(requests, key=lambda r: graph.degree(r.request_id))
            release_outcome = insert_sequence(route, by_release, oracle)
            shareability_outcome = insert_sequence(route, by_shareability, oracle)
            samples += 1
            if release_outcome.feasible and release_outcome.total_cost <= optimal + 1e-6:
                release_hits += 1
            if (
                shareability_outcome.feasible
                and shareability_outcome.total_cost <= optimal + 1e-6
            ):
                shareability_hits += 1
        if samples == 0:
            continue
        results.append(
            InsertionOrderStudy(
                dataset=workload.name,
                group_size=size,
                samples=samples,
                release_order_optimal=release_hits / samples,
                shareability_order_optimal=shareability_hits / samples,
            )
        )
    return results


def _sample_clique(
    graph: ShareabilityGraph, seed_id: int, size: int, rng: random.Random
) -> set[int] | None:
    """Sample a clique of the given size containing ``seed_id`` (or ``None``)."""
    clique = {seed_id}
    candidates = set(graph.neighbors(seed_id))
    while len(clique) < size:
        if not candidates:
            return None
        pick = rng.choice(sorted(candidates))
        clique.add(pick)
        candidates &= graph.neighbors(pick)
        candidates -= clique
    return clique


# --------------------------------------------------------------------------- #
# Section III-B: expected sharing probability at the pruning threshold
# --------------------------------------------------------------------------- #
def angle_expectation_study(
    *,
    preset: str = "nyc",
    num_requests: int = 600,
    theta: float = math.pi / 2.0,
    gamma: float = 1.5,
) -> dict[str, float]:
    """Fit the trip-length log-normal of a workload and evaluate E(theta >= delta).

    The paper reports roughly 41% for both datasets at ``theta = pi/2`` and
    ``gamma = 1.5``.
    """
    workload = make_workload(
        preset, city_scale=0.7, workload_overrides={"num_requests": num_requests}
    )
    distances = [request.direct_cost for request in workload.requests]
    mu, sigma = fit_lognormal(distances)
    probability = expected_sharing_probability(mu, sigma, theta, gamma)
    return {
        "dataset": workload.name,
        "mu": mu,
        "sigma": sigma,
        "theta": theta,
        "gamma": gamma,
        "expected_probability": probability,
    }
