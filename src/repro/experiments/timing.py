"""The one sanctioned wall-clock shim (repro-lint DET001 allowlist).

Simulation and resilience code must never read the host clock: simulated
time comes from the batch clock and retry waits are virtual.  The only
legitimate wall-clock uses are *reporting* concerns -- stamping a results
file with when it was produced, measuring how long a whole experiment run
took.  Those go through this module so that every host-clock dependency in
``src/repro/`` is greppable in one place, and so DET001 can ban the raw
calls everywhere else.

``time.perf_counter()`` remains legal outside this shim: it only measures
durations for metrics (``wall_clock_seconds``) and never feeds simulation
logic.
"""

from __future__ import annotations

import time
from datetime import datetime, timezone

__all__ = ["utc_timestamp", "wall_clock"]


def wall_clock() -> float:
    """Seconds since the epoch, for run-report stamping only."""
    return time.time()  # repro-lint: disable=DET001 the allowlisted shim body


def utc_timestamp() -> str:
    """ISO-8601 UTC timestamp for results files and job summaries."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")  # repro-lint: disable=DET001 the allowlisted shim body
