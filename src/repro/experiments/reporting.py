"""Turning sweep results into readable tables and CSV files."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from collections.abc import Iterable, Sequence

from .harness import ResultRow, SweepResult

#: Metrics shown in the default reports (the three panels of every figure).
DEFAULT_METRICS: tuple[str, ...] = ("unified_cost", "service_rate", "running_time")


def format_rows(
    rows: Sequence[ResultRow],
    *,
    metrics: Sequence[str] = DEFAULT_METRICS,
    title: str | None = None,
) -> str:
    """Render result rows as a fixed-width text table (one row per cell)."""
    header = ["dataset", "algorithm", "parameter", "value", *metrics]
    lines: list[list[str]] = [header]
    for row in rows:
        lines.append(
            [
                row.dataset,
                row.algorithm,
                row.parameter,
                _format_number(row.value),
                *[_format_number(row.metric(metric)) for metric in metrics],
            ]
        )
    widths = [max(len(line[col]) for line in lines) for col in range(len(header))]
    rendered = []
    if title:
        rendered.append(title)
    for index, line in enumerate(lines):
        rendered.append("  ".join(cell.ljust(widths[col]) for col, cell in enumerate(line)))
        if index == 0:
            rendered.append("  ".join("-" * widths[col] for col in range(len(header))))
    return "\n".join(rendered)


def format_sweep(
    sweep: SweepResult,
    *,
    metric: str = "service_rate",
    title: str | None = None,
) -> str:
    """Render one sweep as an algorithms x parameter-values matrix."""
    algorithms = sweep.algorithms()
    values = sweep.values()
    header = ["algorithm", *[_format_number(value) for value in values]]
    lines = [header]
    for algorithm in algorithms:
        cells = [algorithm]
        for value in values:
            try:
                row = sweep.row_for(algorithm, value)
                cells.append(_format_number(row.metric(metric)))
            except KeyError:
                cells.append("-")
        lines.append(cells)
    widths = [max(len(line[col]) for line in lines) for col in range(len(header))]
    rendered = []
    rendered.append(title or f"{sweep.label} -- {metric} by {sweep.parameter}")
    for index, line in enumerate(lines):
        rendered.append("  ".join(cell.ljust(widths[col]) for col, cell in enumerate(line)))
        if index == 0:
            rendered.append("  ".join("-" * widths[col] for col in range(len(header))))
    return "\n".join(rendered)


def rows_to_csv(
    rows: Iterable[ResultRow],
    path: str | Path | None = None,
) -> str:
    """Serialise rows to CSV; also writes ``path`` when provided."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "dataset",
            "algorithm",
            "parameter",
            "value",
            "unified_cost",
            "service_rate",
            "running_time",
            "shortest_path_queries",
            "peak_memory_bytes",
            "assigned_requests",
            "total_requests",
        ]
    )
    for row in rows:
        writer.writerow(
            [
                row.dataset,
                row.algorithm,
                row.parameter,
                row.value,
                row.unified_cost,
                row.service_rate,
                row.running_time,
                row.shortest_path_queries,
                row.peak_memory_bytes,
                row.assigned_requests,
                row.total_requests,
            ]
        )
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def series_by_algorithm(
    sweep: SweepResult, metric: str
) -> dict[str, list[tuple[float, float]]]:
    """Per-algorithm series of ``(parameter value, metric)`` pairs."""
    return sweep.series(metric)


def _format_number(value: float) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10_000 or abs(value) < 0.01:
            return f"{value:.3e}"
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
