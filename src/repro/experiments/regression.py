"""Benchmark-regression comparison for the oracle-backend microbenchmark.

The CI pipeline regenerates ``benchmarks/results/oracle_backends.txt`` on
every run, but a table that is merely *regenerated* guards nothing: a 2x
slowdown in the ``ch`` query loop would merge green.  This module turns the
table into a gate: :func:`parse_backend_table` extracts the per-backend
``us/query`` column from the benchmark's text output,
:func:`compare_backend_tables` diffs a fresh run against a baseline (the
previous CI run's artifact, or the committed table) and flags any backend
whose per-query time regressed beyond a threshold, and
:func:`format_markdown` renders the before/after table for the CI job
summary.

Comparing absolute microseconds only makes sense on comparable hardware
(artifact baseline from the same runner class).  Against the *committed*
baseline -- timed on a developer machine -- pass ``normalize`` (usually
``"dijkstra"``): every backend's time is divided by the reference backend's
time from the same table, so uniform machine-speed differences cancel and
only *relative* backend regressions trip the gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..exceptions import ConfigurationError

#: Default failure threshold: a backend may not get more than 30% slower.
DEFAULT_THRESHOLD = 0.30


def parse_backend_table(text: str) -> dict[str, float]:
    """Extract ``backend -> us/query`` from an ``oracle_backends.txt`` table.

    The parser is deliberately narrow: it accepts exactly the row shape the
    benchmark emits (a known-looking backend identifier followed by numeric
    columns, ``us/query`` second) and ignores every other line (title,
    header, history notes), so both artifacts and the committed file parse.
    """
    table: dict[str, float] = {}
    for line in text.splitlines():
        tokens = line.split()
        if len(tokens) < 3:
            continue
        name = tokens[0]
        if not name.replace("_", "").isalpha() or name == "backend":
            continue
        try:
            query_us = float(tokens[2])
        except ValueError:
            continue
        table[name] = query_us
    if not table:
        raise ConfigurationError("no backend rows found in benchmark table")
    return table


def parse_backend_json(text: str) -> dict[str, float]:
    """Extract ``backend -> us/query`` from an ``oracle_backends.json`` blob.

    Accepts the payload :func:`benchmarks._common.save_json` writes for the
    backend microbenchmark: a top-level ``query_us`` map is preferred; a
    ``rows`` list of ``{"backend": ..., "query_us": ...}`` dicts is the
    fallback so hand-rolled baselines also parse.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid benchmark JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ConfigurationError("benchmark JSON must be an object")
    table: dict[str, float] = {}
    query_us = payload.get("query_us")
    if isinstance(query_us, dict):
        for name, value in query_us.items():
            table[str(name)] = float(value)
    else:
        for row in payload.get("rows", ()):
            if isinstance(row, dict) and "backend" in row and "query_us" in row:
                table[str(row["backend"])] = float(row["query_us"])
    if not table:
        raise ConfigurationError("no backend entries found in benchmark JSON")
    return table


def load_backend_table(path: str | Path) -> dict[str, float]:
    """Load a backend table from disk, preferring the JSON twin.

    Given ``oracle_backends.json`` (or any ``.json`` path) the JSON parser
    runs directly.  Given the legacy ``.txt`` path, a sibling ``.json`` with
    the same stem wins when it exists -- so CI keeps passing the text path
    while transparently picking up the machine-readable artifact -- and the
    text parser remains the fallback for old baselines.
    """
    path = Path(path)
    if path.suffix == ".json":
        return parse_backend_json(path.read_text())
    sibling = path.with_suffix(".json")
    if sibling.exists():
        return parse_backend_json(sibling.read_text())
    return parse_backend_table(path.read_text())


@dataclass(frozen=True)
class BackendDelta:
    """Before/after comparison of one backend's per-query time."""

    backend: str
    baseline_us: float
    fresh_us: float
    #: Relative change of the (possibly normalised) metric: 0.30 = 30% slower.
    delta: float
    regressed: bool


def compare_backend_tables(
    baseline: dict[str, float],
    fresh: dict[str, float],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    normalize: str | None = None,
) -> list[BackendDelta]:
    """Compare a fresh benchmark table against a baseline.

    A backend regresses when its (normalised) per-query time grew by more
    than ``threshold`` relative to the baseline.  Backends present only in
    the fresh table are new and pass by definition; backends that *vanished*
    from the fresh table fail loudly (a silently dropped benchmark row must
    not disable its gate).
    """
    if threshold <= 0:
        raise ConfigurationError("threshold must be positive")
    base_norm = fresh_norm = 1.0
    if normalize is not None:
        try:
            base_norm = baseline[normalize]
            fresh_norm = fresh[normalize]
        except KeyError as exc:
            raise ConfigurationError(
                f"normalisation backend {normalize!r} missing from a table"
            ) from exc
        if base_norm <= 0 or fresh_norm <= 0:
            raise ConfigurationError("normalisation reference must be positive")
    deltas: list[BackendDelta] = []
    for backend, base_us in baseline.items():
        if backend not in fresh:
            deltas.append(BackendDelta(backend, base_us, float("nan"), float("inf"), True))
            continue
        fresh_us = fresh[backend]
        base_metric = base_us / base_norm
        fresh_metric = fresh_us / fresh_norm
        delta = (fresh_metric - base_metric) / base_metric if base_metric > 0 else 0.0
        deltas.append(
            BackendDelta(backend, base_us, fresh_us, delta, delta > threshold)
        )
    return deltas


def format_markdown(
    deltas: list[BackendDelta],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    normalize: str | None = None,
    metric: str = "us/query",
    title: str = "Oracle-backend benchmark regression gate",
) -> str:
    """Render the before/after table for the CI job summary.

    ``metric`` labels the compared quantity (the service-throughput gate
    passes ``"us/request"``); ``title`` names the gate.  Neither changes the
    comparison itself -- the numbers come from :class:`BackendDelta`.
    """
    mode = (
        f"{metric} normalised by `{normalize}` (cross-machine baseline)"
        if normalize
        else f"absolute {metric} (same-runner baseline)"
    )
    lines = [
        f"### {title}",
        "",
        f"Metric: {mode}; failure threshold: +{threshold:.0%}.",
        "",
        f"| backend | baseline {metric} | fresh {metric} | delta | status |",
        "|---|---|---|---|---|",
    ]
    for d in sorted(deltas, key=lambda d: d.backend):
        fresh_cell = "missing" if d.fresh_us != d.fresh_us else f"{d.fresh_us:.1f}"
        delta_cell = "n/a" if d.delta == float("inf") else f"{d.delta:+.1%}"
        status = "**REGRESSED**" if d.regressed else "ok"
        lines.append(
            f"| {d.backend} | {d.baseline_us:.1f} | {fresh_cell} | "
            f"{delta_cell} | {status} |"
        )
    regressed = [d.backend for d in deltas if d.regressed]
    lines.append("")
    if regressed:
        lines.append(
            f"Gate **failed**: {', '.join(sorted(regressed))} regressed by "
            f"more than {threshold:.0%}."
        )
    else:
        lines.append("Gate passed: no backend regressed beyond the threshold.")
    return "\n".join(lines)


__all__ = [
    "DEFAULT_THRESHOLD",
    "BackendDelta",
    "parse_backend_table",
    "parse_backend_json",
    "load_backend_table",
    "compare_backend_tables",
    "format_markdown",
]
