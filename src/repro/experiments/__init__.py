"""Experiment harness reproducing every table and figure of the paper.

* :mod:`~repro.experiments.harness` -- runs one algorithm over one workload
  and sweeps a parameter across its paper values.
* :mod:`~repro.experiments.figures` -- one entry point per paper artefact
  (Figures 8-17, Tables V-VI, the insertion-order study).
* :mod:`~repro.experiments.reporting` -- turns result rows into the text /
  CSV tables printed by the benchmark harness.
"""

from .harness import ExperimentRunner, ResultRow, SweepResult, run_traced_case
from .reporting import format_rows, rows_to_csv, series_by_algorithm
from . import figures

__all__ = [
    "ExperimentRunner",
    "ResultRow",
    "SweepResult",
    "run_traced_case",
    "format_rows",
    "rows_to_csv",
    "series_by_algorithm",
    "figures",
]
