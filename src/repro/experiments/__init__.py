"""Experiment harness reproducing every table and figure of the paper.

* :mod:`~repro.experiments.harness` -- the :func:`~repro.experiments.harness.run`
  front door (one typed :class:`~repro.experiments.harness.RunSpec` per run),
  the figure sweeps and the scenario/chaos grids.
* :mod:`~repro.experiments.figures` -- one entry point per paper artefact
  (Figures 8-17, Tables V-VI, the insertion-order study).
* :mod:`~repro.experiments.reporting` -- turns result rows into the text /
  CSV tables printed by the benchmark harness.
"""

from .harness import (
    ExperimentRunner,
    ResultRow,
    RunResult,
    RunSpec,
    SweepResult,
    run,
    run_grid,
    run_traced_case,
)
from .reporting import format_rows, rows_to_csv, series_by_algorithm
from . import figures

__all__ = [
    "ExperimentRunner",
    "ResultRow",
    "RunResult",
    "RunSpec",
    "SweepResult",
    "run",
    "run_grid",
    "run_traced_case",
    "format_rows",
    "rows_to_csv",
    "series_by_algorithm",
    "figures",
]
