"""Parameter-sweep harness used by every figure and table reproduction.

Besides the figure sweeps (:class:`ExperimentRunner`), this module owns the
dynamic-world *scenario grid*: :func:`run_scenario_case` runs one
``(scenario, backend, refresh-policy)`` cell with an optional exact-parity
probe after every event burst, and :func:`run_scenario_grid` sweeps the full
product.  The scenario benchmarks (``benchmarks/bench_scenarios.py``) and
the CI scenario job are thin wrappers over these two functions, so
experiments and CI exercise one code path.
"""

from __future__ import annotations

import math
# DET002 audit: every draw below flows through a seeded random.Random
# stream; the module-global generator is never called (repro-lint enforced).
import random
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Sequence
from typing import Any

from pathlib import Path

from ..config import ChaosConfig, ResilienceConfig, ScenarioConfig, SimulationConfig
from ..dispatch import make_dispatcher
from ..dispatch.base import Dispatcher
from ..exceptions import ConfigurationError, ScenarioError
from ..network.shortest_path import DistanceOracle
from ..observability import (
    LATENCY_BUCKETS_S,
    TraceConfig,
    tracing,
    write_run_artifacts,
)
from ..resilience.degrade import ResilienceManager
from ..scenarios.presets import make_chaos_config, make_scenario_workload
from ..scenarios.events import WorldView
from ..scenarios.refresh import make_refresh_policy
from ..scenarios.timeline import Scenario
from ..simulation.engine import SimulationResult, Simulator
from ..workloads.presets import Workload, make_workload

#: Default algorithm line-up of the paper's main figures.
DEFAULT_ALGORITHMS: tuple[str, ...] = (
    "pruneGDP",
    "TicketAssign+",
    "DARM+DPRS",
    "RTV",
    "GAS",
    "SARD",
)

#: Sweep parameters that change the simulation configuration.
_SIMULATION_PARAMETERS = {
    "gamma",
    "capacity",
    "penalty_coefficient",
    "batch_period",
    "angle_threshold",
}
#: Sweep parameters that change the workload shape.
_WORKLOAD_PARAMETERS = {"num_requests", "num_vehicles", "capacity_sigma"}

#: The paper's default request / fleet sizes (Tables III and IV).  Sweep
#: values and defaults are expressed in these units and mapped to laptop
#: scale through the runner's ``request_fraction`` / ``vehicle_fraction``.
PAPER_DEFAULT_REQUESTS = {"chd": 100_000, "nyc": 100_000, "cainiao": 100_000}
PAPER_DEFAULT_VEHICLES = {"chd": 3_000, "nyc": 3_000, "cainiao": 4_000}


@dataclass(frozen=True)
class ResultRow:
    """One (algorithm, parameter value) cell of a figure."""

    dataset: str
    algorithm: str
    parameter: str
    value: float
    unified_cost: float
    service_rate: float
    running_time: float
    shortest_path_queries: int
    peak_memory_bytes: int
    assigned_requests: int
    total_requests: int

    def metric(self, name: str) -> float:
        """Access a metric by the names used in the paper's figures."""
        mapping = {
            "unified_cost": self.unified_cost,
            "service_rate": self.service_rate,
            "running_time": self.running_time,
            "shortest_path_queries": float(self.shortest_path_queries),
            "memory": float(self.peak_memory_bytes),
        }
        try:
            return mapping[name]
        except KeyError as exc:
            raise ConfigurationError(f"unknown metric {name!r}") from exc


@dataclass
class SweepResult:
    """All rows of one parameter sweep (one figure column)."""

    label: str
    parameter: str
    rows: list[ResultRow] = field(default_factory=list)

    def algorithms(self) -> list[str]:
        """Distinct algorithm names in insertion order."""
        seen: dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.algorithm, None)
        return list(seen)

    def values(self) -> list[float]:
        """Distinct parameter values in ascending order."""
        return sorted({row.value for row in self.rows})

    def series(self, metric: str) -> dict[str, list[tuple[float, float]]]:
        """Per-algorithm ``(value, metric)`` series, as plotted in the paper."""
        result: dict[str, list[tuple[float, float]]] = {}
        for row in sorted(self.rows, key=lambda r: r.value):
            result.setdefault(row.algorithm, []).append((row.value, row.metric(metric)))
        return result

    def row_for(self, algorithm: str, value: float) -> ResultRow:
        """The row of one (algorithm, value) cell."""
        for row in self.rows:
            if row.algorithm == algorithm and row.value == value:
                return row
        raise KeyError(f"no row for ({algorithm}, {value})")

    def extend(self, other: "SweepResult") -> None:
        """Append another sweep's rows (used to combine datasets)."""
        self.rows.extend(other.rows)


class ExperimentRunner:
    """Builds workloads, instantiates dispatchers and runs simulations."""

    def __init__(
        self,
        *,
        algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
        request_fraction: float = 0.0025,
        vehicle_fraction: float = 0.04,
        city_scale: float = 0.7,
        dispatcher_factory: Callable[[str], Dispatcher] | None = None,
        routing_backend: str | None = None,
    ) -> None:
        if request_fraction <= 0 or vehicle_fraction <= 0 or city_scale <= 0:
            raise ConfigurationError(
                "request_fraction, vehicle_fraction and city_scale must be positive"
            )
        self.algorithms = tuple(algorithms)
        #: Fraction of the paper's request count a sweep value is scaled by
        #: (0.0025 turns the paper's default 100K requests into 250).
        self.request_fraction = request_fraction
        #: Fraction of the paper's fleet size (0.04 turns 3K vehicles into 120).
        self.vehicle_fraction = vehicle_fraction
        self.city_scale = city_scale
        #: Routing backend forced on every workload built by this runner
        #: (``None`` keeps each preset's ``SimulationConfig.routing_backend``).
        self.routing_backend = routing_backend
        self._dispatcher_factory = dispatcher_factory or make_dispatcher

    # ------------------------------------------------------------------ #
    def run_single(
        self,
        workload: Workload,
        algorithm: str,
        *,
        simulation_config: SimulationConfig | None = None,
        dispatcher: Dispatcher | None = None,
        scenario: Scenario | None = None,
        refresh_policy: str | None = None,
    ) -> SimulationResult:
        """Run one algorithm over one workload and return the raw result.

        With a ``scenario`` (see :func:`repro.scenarios.make_scenario_workload`,
        which also generates the matching surge-modulated request trace) a
        fresh event timeline is built for the run and the oracle follows the
        mutating network under ``refresh_policy`` (the scenario's own policy
        when ``None``).
        """
        config = simulation_config or workload.simulation_config
        dispatcher = dispatcher or self._dispatcher_factory(algorithm)
        timeline = policy = None
        if scenario is not None:
            timeline = scenario.make_timeline()
            policy = make_refresh_policy(
                refresh_policy, config=scenario.config
            )
        elif refresh_policy is not None:
            raise ConfigurationError(
                "refresh_policy without a scenario has nothing to refresh; "
                "pass the scenario whose timeline mutates the network"
            )
        simulator = Simulator(
            network=workload.network,
            oracle=workload.fresh_oracle(backend=config.routing_backend),
            vehicles=workload.fresh_vehicles(),
            requests=list(workload.requests),
            dispatcher=dispatcher,
            config=config,
            record_events=False,
            timeline=timeline,
            refresh_policy=policy,
        )
        return simulator.run()

    # ------------------------------------------------------------------ #
    def sweep(
        self,
        preset: str,
        parameter: str,
        values: Iterable[float],
        *,
        label: str | None = None,
        algorithms: Sequence[str] | None = None,
        workload_overrides: dict | None = None,
        simulation_overrides: dict | None = None,
    ) -> SweepResult:
        """Sweep one parameter over its values for every algorithm.

        ``parameter`` may be a simulation knob (``gamma``, ``capacity``,
        ``penalty_coefficient``, ``batch_period``, ``angle_threshold``) or a
        workload knob (``num_requests``, ``num_vehicles``,
        ``capacity_sigma``).  The workload is regenerated for every value so
        that deadline- or size-dependent properties are consistent.
        """
        algorithms = tuple(algorithms or self.algorithms)
        label = label or f"{preset}:{parameter}"
        result = SweepResult(label=label, parameter=parameter)
        for value in values:
            workload = self._build_workload(
                preset,
                parameter,
                value,
                workload_overrides=workload_overrides,
                simulation_overrides=simulation_overrides,
            )
            for algorithm in algorithms:
                run = self.run_single(workload, algorithm)
                result.rows.append(self._to_row(workload, algorithm, parameter, value, run))
        return result

    # ------------------------------------------------------------------ #
    def _build_workload(
        self,
        preset: str,
        parameter: str,
        value: float,
        *,
        workload_overrides: dict | None,
        simulation_overrides: dict | None,
    ) -> Workload:
        workload_overrides = dict(workload_overrides or {})
        simulation_overrides = dict(simulation_overrides or {})
        if self.routing_backend is not None:
            simulation_overrides.setdefault("routing_backend", self.routing_backend)
        # Every instance uses the paper's default request/fleet sizes scaled
        # by the runner's fractions; the swept parameter then overrides the
        # matching knob.
        paper_requests = PAPER_DEFAULT_REQUESTS.get(preset.lower(), 100_000)
        paper_vehicles = PAPER_DEFAULT_VEHICLES.get(preset.lower(), 3_000)
        if parameter == "num_requests":
            paper_requests = value
        if parameter == "num_vehicles":
            paper_vehicles = value
        workload_overrides.setdefault(
            "num_requests", max(int(round(paper_requests * self.request_fraction)), 1)
        )
        workload_overrides.setdefault(
            "num_vehicles", max(int(round(paper_vehicles * self.vehicle_fraction)), 1)
        )
        if parameter in _SIMULATION_PARAMETERS:
            if parameter == "capacity":
                simulation_overrides[parameter] = int(value)
            else:
                simulation_overrides[parameter] = value
        elif parameter == "capacity_sigma":
            workload_overrides[parameter] = value
        elif parameter not in _WORKLOAD_PARAMETERS:
            raise ConfigurationError(f"unknown sweep parameter {parameter!r}")
        return make_workload(
            preset,
            city_scale=self.city_scale,
            workload_overrides=workload_overrides,
            simulation_overrides=simulation_overrides,
        )

    # ------------------------------------------------------------------ #
    def _to_row(
        self,
        workload: Workload,
        algorithm: str,
        parameter: str,
        value: float,
        run: SimulationResult,
    ) -> ResultRow:
        metrics = run.metrics
        return ResultRow(
            dataset=workload.name,
            algorithm=algorithm,
            parameter=parameter,
            value=float(value),
            unified_cost=metrics.unified_cost,
            service_rate=metrics.service_rate,
            running_time=metrics.dispatch_seconds,
            shortest_path_queries=metrics.shortest_path_queries,
            peak_memory_bytes=metrics.peak_memory_bytes,
            assigned_requests=metrics.assigned_requests,
            total_requests=metrics.total_requests,
        )


# ---------------------------------------------------------------------- #
# traced runs (observability artifacts: JSONL trace, Prometheus, markdown)
# ---------------------------------------------------------------------- #
#: Summary keys pulled into the headline table of the traced-run report.
TRACED_RUN_HIGHLIGHTS = (
    "service_rate",
    "unified_cost",
    "dispatch_seconds",
    "dispatch_p95_seconds",
    "shortest_path_queries",
)


def run_traced_case(
    out_dir: str | Path,
    *,
    name: str = "traced_run",
    preset: str = "nyc",
    algorithm: str = "SARD",
    num_requests: int = 80,
    num_vehicles: int = 12,
    city_scale: float = 0.4,
    backend: str | None = None,
    trace_config: TraceConfig | None = None,
) -> tuple[SimulationResult, dict[str, Path]]:
    """Run one workload with span tracing on and write all three exports.

    Unlike :meth:`ExperimentRunner.run_single` the oracle is built *here* so
    sampled query tracing attaches to the oracle the simulator actually
    queries.  Emits ``<name>.trace.jsonl`` / ``<name>.prom`` /
    ``<name>.report.md`` into ``out_dir`` (the CI scenario job uploads them
    as artifacts) and returns the raw result plus the written paths.
    """
    workload = make_workload(
        preset,
        city_scale=city_scale,
        workload_overrides={
            "num_requests": num_requests,
            "num_vehicles": num_vehicles,
        },
        simulation_overrides={"routing_backend": backend} if backend else None,
    )
    config = workload.simulation_config
    oracle = workload.fresh_oracle(backend=config.routing_backend)
    simulator = Simulator(
        network=workload.network,
        oracle=oracle,
        vehicles=workload.fresh_vehicles(),
        requests=list(workload.requests),
        dispatcher=make_dispatcher(algorithm),
        config=config,
        record_events=False,
    )
    with tracing(oracle=oracle, config=trace_config) as tracer:
        result = simulator.run()
    metrics = result.metrics
    registry = metrics.as_registry()
    # Fold the sampled oracle query latencies from the trace into the
    # registry so the Prometheus snapshot carries the full picture.
    query_latency = registry.histogram(
        "oracle.query_seconds",
        "Sampled shortest-path query latency",
        buckets=LATENCY_BUCKETS_S,
    )
    for record in tracer.records:
        if record.name == "oracle.query":
            query_latency.observe(record.duration)
    paths = write_run_artifacts(
        out_dir,
        name,
        title=(
            f"Traced run: {algorithm} on {workload.name} "
            f"({metrics.total_requests} requests, {num_vehicles} vehicles, "
            f"{oracle.backend_name} oracle)"
        ),
        summary=metrics.summary(),
        tracer=tracer,
        registry=registry,
        highlight_keys=TRACED_RUN_HIGHLIGHTS,
    )
    return result, paths


# ---------------------------------------------------------------------- #
# dynamic-world scenario grid (shared by benchmarks, experiments and CI)
# ---------------------------------------------------------------------- #
def _parity_probe(
    context: dict[str, int], pairs: int, seed: int
) -> Callable[[WorldView], None]:
    """Build the after-every-burst exactness probe for a scenario run.

    The probe compares the scenario oracle against a fresh Dijkstra over the
    *mutated* network on random pairs and checks that every returned path
    only uses edges that currently exist; any divergence raises
    :class:`ScenarioError` (not ``assert``, so the gate also holds under
    ``python -O``).
    """
    rng = random.Random(seed)

    def probe(world: WorldView) -> None:
        context["bursts"] += 1
        network = world.network
        nodes = list(network.nodes())
        reference = DistanceOracle(network, cache_size=0, backend="dijkstra")
        for _ in range(pairs):
            u, v = rng.sample(nodes, 2)
            want = reference.cost(u, v)
            got = world.oracle.cost(u, v)
            if math.isinf(want):
                if not math.isinf(got):
                    raise ScenarioError(
                        f"parity violation: {u}->{v} reachable ({got}) on the "
                        f"scenario oracle but not for fresh Dijkstra"
                    )
                continue
            if abs(got - want) > 1e-6:
                raise ScenarioError(
                    f"parity violation: cost({u}, {v}) = {got} on the scenario "
                    f"oracle vs {want} for fresh Dijkstra"
                )
            path = world.oracle.path(u, v)
            for a, b in zip(path, path[1:]):
                if not network.has_edge(a, b):
                    raise ScenarioError(
                        f"path({u}, {v}) uses the missing edge {a}->{b}"
                    )

    return probe


def run_scenario_case(
    scenario: str,
    backend: str,
    policy: str,
    *,
    preset: str = "nyc",
    algorithm: str = "SARD",
    scale: float = 0.08,
    city_scale: float = 0.4,
    parity_pairs: int = 0,
    parity_seed: int = 99,
    scenario_config: ScenarioConfig | None = None,
) -> dict:
    """Run one (scenario, backend, refresh-policy) cell of the grid.

    Returns a flat row with the refresh-overhead columns (rebuilds, repair
    work, fallback queries, stale time) next to the dispatch metrics.  With
    ``parity_pairs > 0`` an exactness probe runs after every event burst
    (once the refresh policy has made the oracle consistent) and raises on
    any divergence from a fresh Dijkstra over the mutated network.
    """
    workload, built = make_scenario_workload(
        preset,
        scenario,
        scale=scale,
        city_scale=city_scale,
        scenario_config=scenario_config,
        simulation_overrides={"routing_backend": backend},
    )
    context = {"bursts": 0}
    on_applied = (
        _parity_probe(context, parity_pairs, parity_seed) if parity_pairs else None
    )
    simulator = Simulator(
        network=workload.network,
        oracle=workload.fresh_oracle(),
        vehicles=workload.fresh_vehicles(),
        requests=list(workload.requests),
        dispatcher=make_dispatcher(algorithm),
        config=workload.simulation_config,
        record_events=False,
        timeline=built.make_timeline(on_applied=on_applied),
        refresh_policy=make_refresh_policy(policy, config=built.config),
    )
    metrics = simulator.run().metrics
    if parity_pairs and context["bursts"] == 0:
        raise ScenarioError(f"scenario {scenario!r} applied no events")
    return {
        "scenario": scenario,
        "backend": backend,
        "policy": policy,
        "events": metrics.scenario_events,
        "rebuilds": metrics.oracle_rebuilds,
        "rebuild_ms": metrics.oracle_rebuild_seconds * 1e3,
        "repairs": metrics.oracle_repairs,
        "repair_ms": metrics.oracle_repair_seconds * 1e3,
        "snapshot_hits": metrics.oracle_snapshot_hits,
        "recontracted": metrics.oracle_nodes_recontracted,
        "refresh_ms": (
            metrics.oracle_rebuild_seconds + metrics.oracle_repair_seconds
        ) * 1e3,
        "fallback_q": metrics.oracle_fallback_queries,
        "stale_ms": metrics.oracle_stale_seconds * 1e3,
        "service_rate": metrics.service_rate,
        "unified_cost": metrics.unified_cost,
        "dispatch_s": metrics.dispatch_seconds,
    }


def run_scenario_grid(
    scenarios: Sequence[str],
    backends: Sequence[str],
    policies: Sequence[str],
    **case_kwargs: Any,
) -> list[dict]:
    """Sweep the full scenario x backend x refresh-policy product.

    This is the one code path behind the ``bench_scenarios`` refresh table,
    the CI scenario job and the ROADMAP's "ScenarioConfig sweep" item; all
    keyword arguments are forwarded to :func:`run_scenario_case`.
    """
    return [
        run_scenario_case(scenario, backend, policy, **case_kwargs)
        for scenario in scenarios
        for backend in backends
        for policy in policies
    ]


# ---------------------------------------------------------------------- #
# chaos grid (resilience layer under fault injection)
# ---------------------------------------------------------------------- #
#: Resilience knobs the chaos grid runs under.  The batch budget is charged
#: with *virtual* injected latency only (``count_real_dispatch_time=False``)
#: so breaker decisions -- and therefore the whole run -- are independent of
#: the host's wall clock; every accepted assignment is re-verified against
#: fresh Dijkstra.
CHAOS_RESILIENCE = ResilienceConfig(
    batch_time_budget=0.05,
    count_real_dispatch_time=False,
    probe_pairs=4,
    verify_assignments=True,
    breaker_threshold=2,
    recovery_interval=2,
)


def run_chaos_case(
    scenario: str,
    backend: str,
    policy: str,
    *,
    chaos: str | ChaosConfig = "flaky_oracle",
    preset: str = "nyc",
    algorithm: str = "pruneGDP",
    scale: float = 0.08,
    city_scale: float = 0.4,
    resilience: ResilienceConfig | None = None,
    scenario_config: ScenarioConfig | None = None,
) -> dict:
    """Run one (scenario, backend, refresh-policy) cell under fault injection.

    The run is wrapped in a :class:`~repro.resilience.degrade.ResilienceManager`
    with the ``chaos`` preset's fault rates; it must complete without an
    unhandled exception and -- because ``verify_assignments`` is on -- with
    every accepted assignment's leg costs exact against fresh Dijkstra.
    Returns a flat row with the resilience counters next to the dispatch
    metrics.  Deterministic: two calls with identical arguments inject the
    identical fault sequence and produce identical non-timing metrics (see
    :func:`deterministic_summary`).
    """
    chaos_config = make_chaos_config(chaos) if isinstance(chaos, str) else chaos
    manager = ResilienceManager(
        config=resilience if resilience is not None else CHAOS_RESILIENCE,
        chaos=chaos_config,
    )
    workload, built = make_scenario_workload(
        preset,
        scenario,
        scale=scale,
        city_scale=city_scale,
        scenario_config=scenario_config,
        simulation_overrides={"routing_backend": backend},
    )
    simulator = Simulator(
        network=workload.network,
        oracle=manager.make_oracle(workload.network, backend=backend),
        vehicles=workload.fresh_vehicles(),
        requests=list(workload.requests),
        dispatcher=make_dispatcher(algorithm),
        config=workload.simulation_config,
        record_events=False,
        timeline=built.make_timeline(),
        refresh_policy=make_refresh_policy(policy, config=built.config),
        resilience=manager,
    )
    metrics = simulator.run().metrics
    return {
        "scenario": scenario,
        "backend": backend,
        "policy": policy,
        "events": metrics.scenario_events,
        "faults": metrics.faults_injected,
        "retries": metrics.oracle_retries,
        "breaker_trips": metrics.breaker_trips,
        "degraded": metrics.degraded_batches,
        "overruns": metrics.batch_overruns,
        "probe_failures": metrics.probe_failures,
        "self_heals": metrics.self_heals,
        "recovery_ms": metrics.recovery_seconds * 1e3,
        "rebuilds": metrics.oracle_rebuilds,
        "repairs": metrics.oracle_repairs,
        "fallback_q": metrics.oracle_fallback_queries,
        "service_rate": metrics.service_rate,
        "unified_cost": metrics.unified_cost,
        "dispatch_s": metrics.dispatch_seconds,
    }


def run_chaos_grid(
    scenarios: Sequence[str],
    backends: Sequence[str],
    policies: Sequence[str],
    **case_kwargs: Any,
) -> list[dict]:
    """Sweep the scenario x backend x refresh-policy product under chaos.

    One code path behind ``benchmarks/bench_chaos.py`` and the CI
    chaos-smoke job; keyword arguments are forwarded to
    :func:`run_chaos_case`.
    """
    return [
        run_chaos_case(scenario, backend, policy, **case_kwargs)
        for scenario in scenarios
        for backend in backends
        for policy in policies
    ]


def deterministic_summary(row: dict) -> dict:
    """Strip the timing-dependent columns from a chaos (or scenario) row.

    What remains must be bit-identical across two same-seed runs -- the
    reproducibility contract the chaos tests and the CI job assert.
    """
    timing = {"dispatch_s", "wall_clock_s"}
    return {
        key: value
        for key, value in row.items()
        if key not in timing and not key.endswith("_ms")
    }
