"""Parameter-sweep harness used by every figure and table reproduction.

The front door of this module is :func:`run`: one typed :class:`RunSpec`
describes any kind of run -- a plain single simulation, a dynamic-world
scenario cell (with optional exact-parity probing), a chaos cell under
fault injection, a span-traced run with observability artifacts, or a
service-mode run through :class:`repro.service.DispatchService` -- and
:func:`run` executes it.  :func:`run_grid` sweeps a list of specs;
:meth:`RunSpec.grid` builds the scenario x backend x refresh-policy
product.  The historical entry points (:func:`run_scenario_case`,
:func:`run_scenario_grid`, :func:`run_chaos_case`, :func:`run_chaos_grid`,
:func:`run_traced_case`) remain as thin delegating wrappers that emit a
``DeprecationWarning``.

Besides the front door, :class:`ExperimentRunner` owns the figure sweeps
(it delegates its per-cell work to :func:`run` as well, so experiments,
benchmarks and CI exercise one code path).
"""

from __future__ import annotations

import math
# DET002 audit: every draw below flows through a seeded random.Random
# stream; the module-global generator is never called (repro-lint enforced).
import random
import warnings
from dataclasses import dataclass, field, replace
from collections.abc import Callable, Iterable, Sequence
from typing import Any

from pathlib import Path

from ..config import (
    ChaosConfig,
    ResilienceConfig,
    ScenarioConfig,
    ServiceConfig,
    SimulationConfig,
)
from ..dispatch import make_dispatcher
from ..dispatch.base import Dispatcher
from ..exceptions import ConfigurationError, ScenarioError
from ..network.shortest_path import DistanceOracle
from ..observability import (
    LATENCY_BUCKETS_S,
    TraceConfig,
    tracing,
    write_run_artifacts,
)
from ..resilience.degrade import ResilienceManager
from ..scenarios.presets import make_chaos_config, make_scenario_workload
from ..scenarios.events import WorldView
from ..scenarios.refresh import make_refresh_policy
from ..scenarios.timeline import Scenario
from ..service.schemas import RideRequest
from ..service.server import DispatchService, ServiceResult
from ..simulation.engine import SimulationResult, Simulator
from ..workloads.presets import Workload, make_workload

#: Default algorithm line-up of the paper's main figures.
DEFAULT_ALGORITHMS: tuple[str, ...] = (
    "pruneGDP",
    "TicketAssign+",
    "DARM+DPRS",
    "RTV",
    "GAS",
    "SARD",
)

#: Sweep parameters that change the simulation configuration.
_SIMULATION_PARAMETERS = {
    "gamma",
    "capacity",
    "penalty_coefficient",
    "batch_period",
    "angle_threshold",
}
#: Sweep parameters that change the workload shape.
_WORKLOAD_PARAMETERS = {"num_requests", "num_vehicles", "capacity_sigma"}

#: The paper's default request / fleet sizes (Tables III and IV).  Sweep
#: values and defaults are expressed in these units and mapped to laptop
#: scale through the runner's ``request_fraction`` / ``vehicle_fraction``.
PAPER_DEFAULT_REQUESTS = {"chd": 100_000, "nyc": 100_000, "cainiao": 100_000}
PAPER_DEFAULT_VEHICLES = {"chd": 3_000, "nyc": 3_000, "cainiao": 4_000}


@dataclass(frozen=True)
class ResultRow:
    """One (algorithm, parameter value) cell of a figure."""

    dataset: str
    algorithm: str
    parameter: str
    value: float
    unified_cost: float
    service_rate: float
    running_time: float
    shortest_path_queries: int
    peak_memory_bytes: int
    assigned_requests: int
    total_requests: int

    def metric(self, name: str) -> float:
        """Access a metric by the names used in the paper's figures."""
        mapping = {
            "unified_cost": self.unified_cost,
            "service_rate": self.service_rate,
            "running_time": self.running_time,
            "shortest_path_queries": float(self.shortest_path_queries),
            "memory": float(self.peak_memory_bytes),
        }
        try:
            return mapping[name]
        except KeyError as exc:
            raise ConfigurationError(f"unknown metric {name!r}") from exc


@dataclass
class SweepResult:
    """All rows of one parameter sweep (one figure column)."""

    label: str
    parameter: str
    rows: list[ResultRow] = field(default_factory=list)

    def algorithms(self) -> list[str]:
        """Distinct algorithm names in insertion order."""
        seen: dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.algorithm, None)
        return list(seen)

    def values(self) -> list[float]:
        """Distinct parameter values in ascending order."""
        return sorted({row.value for row in self.rows})

    def series(self, metric: str) -> dict[str, list[tuple[float, float]]]:
        """Per-algorithm ``(value, metric)`` series, as plotted in the paper."""
        result: dict[str, list[tuple[float, float]]] = {}
        for row in sorted(self.rows, key=lambda r: r.value):
            result.setdefault(row.algorithm, []).append((row.value, row.metric(metric)))
        return result

    def row_for(self, algorithm: str, value: float) -> ResultRow:
        """The row of one (algorithm, value) cell."""
        for row in self.rows:
            if row.algorithm == algorithm and row.value == value:
                return row
        raise KeyError(f"no row for ({algorithm}, {value})")

    def extend(self, other: "SweepResult") -> None:
        """Append another sweep's rows (used to combine datasets)."""
        self.rows.extend(other.rows)


class ExperimentRunner:
    """Builds workloads, instantiates dispatchers and runs simulations."""

    def __init__(
        self,
        *,
        algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
        request_fraction: float = 0.0025,
        vehicle_fraction: float = 0.04,
        city_scale: float = 0.7,
        dispatcher_factory: Callable[[str], Dispatcher] | None = None,
        routing_backend: str | None = None,
    ) -> None:
        if request_fraction <= 0 or vehicle_fraction <= 0 or city_scale <= 0:
            raise ConfigurationError(
                "request_fraction, vehicle_fraction and city_scale must be positive"
            )
        self.algorithms = tuple(algorithms)
        #: Fraction of the paper's request count a sweep value is scaled by
        #: (0.0025 turns the paper's default 100K requests into 250).
        self.request_fraction = request_fraction
        #: Fraction of the paper's fleet size (0.04 turns 3K vehicles into 120).
        self.vehicle_fraction = vehicle_fraction
        self.city_scale = city_scale
        #: Routing backend forced on every workload built by this runner
        #: (``None`` keeps each preset's ``SimulationConfig.routing_backend``).
        self.routing_backend = routing_backend
        self._dispatcher_factory = dispatcher_factory or make_dispatcher

    # ------------------------------------------------------------------ #
    def run_single(
        self,
        workload: Workload,
        algorithm: str,
        *,
        simulation_config: SimulationConfig | None = None,
        dispatcher: Dispatcher | None = None,
        scenario: Scenario | None = None,
        refresh_policy: str | None = None,
    ) -> SimulationResult:
        """Run one algorithm over one workload and return the raw result.

        With a ``scenario`` (see :func:`repro.scenarios.make_scenario_workload`,
        which also generates the matching surge-modulated request trace) a
        fresh event timeline is built for the run and the oracle follows the
        mutating network under ``refresh_policy`` (the scenario's own policy
        when ``None``).

        This is a convenience method over the :func:`run` front door --
        equivalent to ``run(RunSpec(mode="single", workload=..., ...))``.
        """
        outcome = run(RunSpec(
            mode="single",
            workload=workload,
            algorithm=algorithm,
            simulation_config=simulation_config,
            dispatcher=dispatcher or self._dispatcher_factory(algorithm),
            scenario=scenario,
            refresh_policy=refresh_policy,
        ))
        assert outcome.simulation is not None
        return outcome.simulation

    # ------------------------------------------------------------------ #
    def sweep(
        self,
        preset: str,
        parameter: str,
        values: Iterable[float],
        *,
        label: str | None = None,
        algorithms: Sequence[str] | None = None,
        workload_overrides: dict | None = None,
        simulation_overrides: dict | None = None,
    ) -> SweepResult:
        """Sweep one parameter over its values for every algorithm.

        ``parameter`` may be a simulation knob (``gamma``, ``capacity``,
        ``penalty_coefficient``, ``batch_period``, ``angle_threshold``) or a
        workload knob (``num_requests``, ``num_vehicles``,
        ``capacity_sigma``).  The workload is regenerated for every value so
        that deadline- or size-dependent properties are consistent.
        """
        algorithms = tuple(algorithms or self.algorithms)
        label = label or f"{preset}:{parameter}"
        result = SweepResult(label=label, parameter=parameter)
        for value in values:
            workload = self._build_workload(
                preset,
                parameter,
                value,
                workload_overrides=workload_overrides,
                simulation_overrides=simulation_overrides,
            )
            for algorithm in algorithms:
                run = self.run_single(workload, algorithm)
                result.rows.append(self._to_row(workload, algorithm, parameter, value, run))
        return result

    # ------------------------------------------------------------------ #
    def _build_workload(
        self,
        preset: str,
        parameter: str,
        value: float,
        *,
        workload_overrides: dict | None,
        simulation_overrides: dict | None,
    ) -> Workload:
        workload_overrides = dict(workload_overrides or {})
        simulation_overrides = dict(simulation_overrides or {})
        if self.routing_backend is not None:
            simulation_overrides.setdefault("routing_backend", self.routing_backend)
        # Every instance uses the paper's default request/fleet sizes scaled
        # by the runner's fractions; the swept parameter then overrides the
        # matching knob.
        paper_requests = PAPER_DEFAULT_REQUESTS.get(preset.lower(), 100_000)
        paper_vehicles = PAPER_DEFAULT_VEHICLES.get(preset.lower(), 3_000)
        if parameter == "num_requests":
            paper_requests = value
        if parameter == "num_vehicles":
            paper_vehicles = value
        workload_overrides.setdefault(
            "num_requests", max(int(round(paper_requests * self.request_fraction)), 1)
        )
        workload_overrides.setdefault(
            "num_vehicles", max(int(round(paper_vehicles * self.vehicle_fraction)), 1)
        )
        if parameter in _SIMULATION_PARAMETERS:
            if parameter == "capacity":
                simulation_overrides[parameter] = int(value)
            else:
                simulation_overrides[parameter] = value
        elif parameter == "capacity_sigma":
            workload_overrides[parameter] = value
        elif parameter not in _WORKLOAD_PARAMETERS:
            raise ConfigurationError(f"unknown sweep parameter {parameter!r}")
        return make_workload(
            preset,
            city_scale=self.city_scale,
            workload_overrides=workload_overrides,
            simulation_overrides=simulation_overrides,
        )

    # ------------------------------------------------------------------ #
    def _to_row(
        self,
        workload: Workload,
        algorithm: str,
        parameter: str,
        value: float,
        run: SimulationResult,
    ) -> ResultRow:
        metrics = run.metrics
        return ResultRow(
            dataset=workload.name,
            algorithm=algorithm,
            parameter=parameter,
            value=float(value),
            unified_cost=metrics.unified_cost,
            service_rate=metrics.service_rate,
            running_time=metrics.dispatch_seconds,
            shortest_path_queries=metrics.shortest_path_queries,
            peak_memory_bytes=metrics.peak_memory_bytes,
            assigned_requests=metrics.assigned_requests,
            total_requests=metrics.total_requests,
        )


# ---------------------------------------------------------------------- #
# the unified run() front door
# ---------------------------------------------------------------------- #
#: Run kinds the front door understands.
RUN_MODES = ("single", "scenario", "chaos", "traced", "service")

#: RunSpec fields that only make sense for specific modes; validation
#: rejects stray combinations so a typo'd spec fails loudly, not silently.
_MODE_ONLY_FIELDS: dict[str, tuple[str, ...]] = {
    "parity_pairs": ("scenario",),
    "chaos": ("chaos",),
    "resilience": ("chaos",),
    "out_dir": ("traced",),
    "trace_config": ("traced",),
    "service_config": ("service",),
}


@dataclass(frozen=True, kw_only=True)
class RunSpec:
    """One typed description of a harness run (the input of :func:`run`).

    ``mode`` selects the run kind:

    ``single``
        One algorithm over one workload (a prebuilt :class:`Workload` via
        ``workload=`` or a preset built from the size knobs).
    ``scenario``
        One (``scenario``, ``backend``, ``refresh_policy``) cell of the
        dynamic-world grid, with optional exact-parity probing.
    ``chaos``
        The same cell wrapped in fault injection + the resilience ladder.
    ``traced``
        A span-traced run writing trace/Prometheus/markdown artifacts to
        ``out_dir``.
    ``service``
        The workload's trace replayed through
        :class:`repro.service.DispatchService` (assignments are
        parity-exact with mode ``single`` on the same workload).
    """

    mode: str = "single"
    # -- workload shape -------------------------------------------------- #
    preset: str = "nyc"
    #: Request-count scale for preset-built workloads.
    scale: float = 0.08
    city_scale: float = 0.4
    num_requests: int | None = None
    num_vehicles: int | None = None
    #: Routing backend override (``None`` keeps the preset's).
    backend: str | None = None
    #: Prebuilt workload (modes ``single`` / ``service``); skips the preset.
    workload: Workload | None = None
    # -- algorithm / simulation ------------------------------------------ #
    #: Dispatcher name; ``None`` picks the mode's default (``SARD``, or
    #: ``pruneGDP`` for chaos runs).
    algorithm: str | None = None
    dispatcher: Dispatcher | None = None
    simulation_config: SimulationConfig | None = None
    # -- dynamic world --------------------------------------------------- #
    #: Scenario name (modes ``scenario`` / ``chaos``) or a prebuilt
    #: :class:`~repro.scenarios.timeline.Scenario` (mode ``single``).
    scenario: str | Scenario | None = None
    refresh_policy: str | None = None
    scenario_config: ScenarioConfig | None = None
    parity_pairs: int = 0
    parity_seed: int = 99
    # -- chaos ----------------------------------------------------------- #
    chaos: str | ChaosConfig | None = None
    resilience: ResilienceConfig | None = None
    # -- traced ---------------------------------------------------------- #
    out_dir: str | Path | None = None
    name: str = "traced_run"
    trace_config: TraceConfig | None = None
    # -- service --------------------------------------------------------- #
    service_config: ServiceConfig | None = None

    def __post_init__(self) -> None:
        if self.mode not in RUN_MODES:
            raise ConfigurationError(
                f"mode must be one of {RUN_MODES} (got {self.mode!r})"
            )
        if self.scale <= 0 or self.city_scale <= 0:
            raise ConfigurationError("scale and city_scale must be positive")
        if self.workload is not None and not isinstance(self.workload, Workload):
            raise ConfigurationError(
                "workload= takes a built Workload; preset names go in preset= "
                f"(got {self.workload!r})"
            )
        if self.parity_pairs < 0:
            raise ConfigurationError("parity_pairs must be non-negative")
        for field_name, modes in _MODE_ONLY_FIELDS.items():
            value = getattr(self, field_name)
            if value not in (None, 0) and self.mode not in modes:
                raise ConfigurationError(
                    f"{field_name}= only applies to mode(s) {modes} "
                    f"(spec has mode {self.mode!r})"
                )
        if self.mode in ("scenario", "chaos"):
            if not isinstance(self.scenario, str):
                raise ConfigurationError(
                    f"mode {self.mode!r} needs a scenario *name* "
                    f"(got {self.scenario!r})"
                )
            if not self.backend or not self.refresh_policy:
                raise ConfigurationError(
                    f"mode {self.mode!r} needs backend= and refresh_policy="
                )
        if self.mode == "traced" and self.out_dir is None:
            raise ConfigurationError("mode 'traced' needs out_dir=")
        if isinstance(self.scenario, Scenario) and self.mode not in (
            "single", "service"
        ):
            raise ConfigurationError(
                "a prebuilt Scenario only applies to modes 'single'/'service'"
            )

    def with_overrides(self, **overrides: Any) -> "RunSpec":
        """Return a copy of this spec with the given fields replaced."""
        return replace(self, **overrides)

    @classmethod
    def grid(
        cls,
        *,
        scenarios: Sequence[str],
        backends: Sequence[str],
        policies: Sequence[str],
        **common: Any,
    ) -> list["RunSpec"]:
        """Specs for the scenario x backend x refresh-policy product.

        ``common`` (including ``mode="scenario"`` or ``mode="chaos"``) is
        applied to every cell; feed the result to :func:`run_grid`.
        """
        return [
            cls(
                scenario=scenario,
                backend=backend,
                refresh_policy=policy,
                **common,
            )
            for scenario in scenarios
            for backend in backends
            for policy in policies
        ]


@dataclass(frozen=True)
class RunResult:
    """What :func:`run` produced; which fields are set depends on the mode.

    ``simulation`` is set for every mode except ``service`` (which carries
    the full :class:`~repro.service.ServiceResult` in ``service``, with the
    simulation result nested inside it); ``row`` is the flat metric row of
    grid cells; ``artifacts`` maps artifact kinds to written paths for
    traced runs.
    """

    spec: RunSpec
    simulation: SimulationResult | None = None
    row: dict[str, Any] | None = None
    artifacts: dict[str, Path] | None = None
    service: ServiceResult | None = None


def _warn_deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} from repro.experiments.harness",
        DeprecationWarning,
        stacklevel=3,
    )


def _build_workload(spec: RunSpec) -> Workload:
    """Materialise the workload a preset-shaped spec describes."""
    if spec.workload is not None:
        return spec.workload
    overrides: dict[str, object] = {}
    if spec.num_requests is not None:
        overrides["num_requests"] = spec.num_requests
    if spec.num_vehicles is not None:
        overrides["num_vehicles"] = spec.num_vehicles
    return make_workload(
        spec.preset,
        scale=spec.scale,
        city_scale=spec.city_scale,
        workload_overrides=overrides or None,
        simulation_overrides=(
            {"routing_backend": spec.backend} if spec.backend else None
        ),
    )


def _single_impl(spec: RunSpec) -> "RunResult":
    """One algorithm over one workload (optionally under a built Scenario)."""
    workload = _build_workload(spec)
    config = spec.simulation_config or workload.simulation_config
    dispatcher = spec.dispatcher or make_dispatcher(spec.algorithm or "SARD")
    timeline = policy = None
    if isinstance(spec.scenario, Scenario):
        timeline = spec.scenario.make_timeline()
        policy = make_refresh_policy(
            spec.refresh_policy, config=spec.scenario.config
        )
    elif spec.refresh_policy is not None:
        raise ConfigurationError(
            "refresh_policy without a scenario has nothing to refresh; "
            "pass the scenario whose timeline mutates the network"
        )
    simulator = Simulator(
        network=workload.network,
        oracle=workload.fresh_oracle(backend=config.routing_backend),
        vehicles=workload.fresh_vehicles(),
        requests=list(workload.requests),
        dispatcher=dispatcher,
        config=config,
        record_events=False,
        timeline=timeline,
        refresh_policy=policy,
    )
    return RunResult(spec=spec, simulation=simulator.run())


def _service_impl(spec: RunSpec) -> "RunResult":
    """Replay the workload's trace through the dispatch service.

    The service drives the simulator's stepwise interface, so the returned
    assignments are parity-exact with mode ``single`` over the same
    workload (events are recorded here -- the service streams them).
    """
    workload = _build_workload(spec)
    config = spec.simulation_config or workload.simulation_config
    timeline = None
    policy = spec.refresh_policy
    if isinstance(spec.scenario, Scenario):
        timeline = spec.scenario.make_timeline()
        policy = make_refresh_policy(
            spec.refresh_policy, config=spec.scenario.config
        )
    service = DispatchService(
        network=workload.network,
        oracle=workload.fresh_oracle(backend=config.routing_backend),
        vehicles=workload.fresh_vehicles(),
        dispatcher=spec.dispatcher or make_dispatcher(spec.algorithm or "SARD"),
        config=config,
        service_config=spec.service_config,
        timeline=timeline,
        refresh_policy=policy,
    )
    result = service.serve(
        RideRequest.from_request(request) for request in workload.requests
    )
    return RunResult(
        spec=spec, simulation=result.simulation, service=result
    )


def run(spec: RunSpec) -> RunResult:
    """Execute one :class:`RunSpec` -- the harness's single front door.

    Every experiment, benchmark and CI job funnels through here, so the
    five run kinds stay behaviourally consistent (one workload builder,
    one simulator, one service).
    """
    impls: dict[str, Callable[[RunSpec], RunResult]] = {
        "single": _single_impl,
        "scenario": _scenario_impl,
        "chaos": _chaos_impl,
        "traced": _traced_impl,
        "service": _service_impl,
    }
    return impls[spec.mode](spec)


def run_grid(specs: Iterable[RunSpec]) -> list[RunResult]:
    """Run every spec in order (see :meth:`RunSpec.grid`)."""
    return [run(spec) for spec in specs]


# ---------------------------------------------------------------------- #
# traced runs (observability artifacts: JSONL trace, Prometheus, markdown)
# ---------------------------------------------------------------------- #
#: Summary keys pulled into the headline table of the traced-run report.
TRACED_RUN_HIGHLIGHTS = (
    "service_rate",
    "unified_cost",
    "dispatch_seconds",
    "dispatch_p95_seconds",
    "shortest_path_queries",
)


def _traced_impl(spec: "RunSpec") -> "RunResult":
    """Run one workload with span tracing on and write all three exports.

    Unlike mode ``single`` the oracle is built *here* so sampled query
    tracing attaches to the oracle the simulator actually queries.  Emits
    ``<name>.trace.jsonl`` / ``<name>.prom`` / ``<name>.report.md`` into
    ``spec.out_dir`` (the CI scenario job uploads them as artifacts).
    """
    algorithm = spec.algorithm or "SARD"
    num_requests = spec.num_requests if spec.num_requests is not None else 80
    num_vehicles = spec.num_vehicles if spec.num_vehicles is not None else 12
    assert spec.out_dir is not None  # enforced by RunSpec validation
    workload = make_workload(
        spec.preset,
        city_scale=spec.city_scale,
        workload_overrides={
            "num_requests": num_requests,
            "num_vehicles": num_vehicles,
        },
        simulation_overrides=(
            {"routing_backend": spec.backend} if spec.backend else None
        ),
    )
    config = workload.simulation_config
    oracle = workload.fresh_oracle(backend=config.routing_backend)
    simulator = Simulator(
        network=workload.network,
        oracle=oracle,
        vehicles=workload.fresh_vehicles(),
        requests=list(workload.requests),
        dispatcher=make_dispatcher(algorithm),
        config=config,
        record_events=False,
    )
    with tracing(oracle=oracle, config=spec.trace_config) as tracer:
        result = simulator.run()
    metrics = result.metrics
    registry = metrics.as_registry()
    # Fold the sampled oracle query latencies from the trace into the
    # registry so the Prometheus snapshot carries the full picture.
    query_latency = registry.histogram(
        "oracle.query_seconds",
        "Sampled shortest-path query latency",
        buckets=LATENCY_BUCKETS_S,
    )
    for record in tracer.records:
        if record.name == "oracle.query":
            query_latency.observe(record.duration)
    paths = write_run_artifacts(
        spec.out_dir,
        spec.name,
        title=(
            f"Traced run: {algorithm} on {workload.name} "
            f"({metrics.total_requests} requests, {num_vehicles} vehicles, "
            f"{oracle.backend_name} oracle)"
        ),
        summary=metrics.summary(),
        tracer=tracer,
        registry=registry,
        highlight_keys=TRACED_RUN_HIGHLIGHTS,
    )
    return RunResult(spec=spec, simulation=result, artifacts=paths)


def run_traced_case(
    out_dir: str | Path,
    *,
    name: str = "traced_run",
    preset: str = "nyc",
    algorithm: str = "SARD",
    num_requests: int = 80,
    num_vehicles: int = 12,
    city_scale: float = 0.4,
    backend: str | None = None,
    trace_config: TraceConfig | None = None,
) -> tuple[SimulationResult, dict[str, Path]]:
    """Deprecated wrapper over ``run(RunSpec(mode="traced", ...))``."""
    _warn_deprecated("run_traced_case", 'run(RunSpec(mode="traced", ...))')
    outcome = run(RunSpec(
        mode="traced",
        out_dir=out_dir,
        name=name,
        preset=preset,
        algorithm=algorithm,
        num_requests=num_requests,
        num_vehicles=num_vehicles,
        city_scale=city_scale,
        backend=backend,
        trace_config=trace_config,
    ))
    assert outcome.simulation is not None and outcome.artifacts is not None
    return outcome.simulation, outcome.artifacts


# ---------------------------------------------------------------------- #
# dynamic-world scenario grid (shared by benchmarks, experiments and CI)
# ---------------------------------------------------------------------- #
def _parity_probe(
    context: dict[str, int], pairs: int, seed: int
) -> Callable[[WorldView], None]:
    """Build the after-every-burst exactness probe for a scenario run.

    The probe compares the scenario oracle against a fresh Dijkstra over the
    *mutated* network on random pairs and checks that every returned path
    only uses edges that currently exist; any divergence raises
    :class:`ScenarioError` (not ``assert``, so the gate also holds under
    ``python -O``).
    """
    rng = random.Random(seed)

    def probe(world: WorldView) -> None:
        context["bursts"] += 1
        network = world.network
        nodes = list(network.nodes())
        reference = DistanceOracle(network, cache_size=0, backend="dijkstra")
        for _ in range(pairs):
            u, v = rng.sample(nodes, 2)
            want = reference.cost(u, v)
            got = world.oracle.cost(u, v)
            if math.isinf(want):
                if not math.isinf(got):
                    raise ScenarioError(
                        f"parity violation: {u}->{v} reachable ({got}) on the "
                        f"scenario oracle but not for fresh Dijkstra"
                    )
                continue
            if abs(got - want) > 1e-6:
                raise ScenarioError(
                    f"parity violation: cost({u}, {v}) = {got} on the scenario "
                    f"oracle vs {want} for fresh Dijkstra"
                )
            path = world.oracle.path(u, v)
            for a, b in zip(path, path[1:]):
                if not network.has_edge(a, b):
                    raise ScenarioError(
                        f"path({u}, {v}) uses the missing edge {a}->{b}"
                    )

    return probe


def _scenario_impl(spec: "RunSpec") -> "RunResult":
    """Run one (scenario, backend, refresh-policy) cell of the grid.

    The row carries the refresh-overhead columns (rebuilds, repair work,
    fallback queries, stale time) next to the dispatch metrics.  With
    ``parity_pairs > 0`` an exactness probe runs after every event burst
    (once the refresh policy has made the oracle consistent) and raises on
    any divergence from a fresh Dijkstra over the mutated network.
    """
    scenario = spec.scenario
    backend = spec.backend
    policy = spec.refresh_policy
    assert isinstance(scenario, str) and backend and policy  # RunSpec-validated
    algorithm = spec.algorithm or "SARD"
    workload, built = make_scenario_workload(
        spec.preset,
        scenario,
        scale=spec.scale,
        city_scale=spec.city_scale,
        scenario_config=spec.scenario_config,
        simulation_overrides={"routing_backend": backend},
    )
    context = {"bursts": 0}
    on_applied = (
        _parity_probe(context, spec.parity_pairs, spec.parity_seed)
        if spec.parity_pairs
        else None
    )
    simulator = Simulator(
        network=workload.network,
        oracle=workload.fresh_oracle(),
        vehicles=workload.fresh_vehicles(),
        requests=list(workload.requests),
        dispatcher=make_dispatcher(algorithm),
        config=workload.simulation_config,
        record_events=False,
        timeline=built.make_timeline(on_applied=on_applied),
        refresh_policy=make_refresh_policy(policy, config=built.config),
    )
    result = simulator.run()
    metrics = result.metrics
    if spec.parity_pairs and context["bursts"] == 0:
        raise ScenarioError(f"scenario {scenario!r} applied no events")
    row = {
        "scenario": scenario,
        "backend": backend,
        "policy": policy,
        "events": metrics.scenario_events,
        "rebuilds": metrics.oracle_rebuilds,
        "rebuild_ms": metrics.oracle_rebuild_seconds * 1e3,
        "repairs": metrics.oracle_repairs,
        "repair_ms": metrics.oracle_repair_seconds * 1e3,
        "snapshot_hits": metrics.oracle_snapshot_hits,
        "recontracted": metrics.oracle_nodes_recontracted,
        "refresh_ms": (
            metrics.oracle_rebuild_seconds + metrics.oracle_repair_seconds
        ) * 1e3,
        "fallback_q": metrics.oracle_fallback_queries,
        "stale_ms": metrics.oracle_stale_seconds * 1e3,
        "service_rate": metrics.service_rate,
        "unified_cost": metrics.unified_cost,
        "dispatch_s": metrics.dispatch_seconds,
    }
    return RunResult(spec=spec, simulation=result, row=row)


def run_scenario_case(
    scenario: str,
    backend: str,
    policy: str,
    *,
    preset: str = "nyc",
    algorithm: str = "SARD",
    scale: float = 0.08,
    city_scale: float = 0.4,
    parity_pairs: int = 0,
    parity_seed: int = 99,
    scenario_config: ScenarioConfig | None = None,
) -> dict:
    """Deprecated wrapper over ``run(RunSpec(mode="scenario", ...))``."""
    _warn_deprecated(
        "run_scenario_case", 'run(RunSpec(mode="scenario", ...))'
    )
    outcome = run(RunSpec(
        mode="scenario",
        scenario=scenario,
        backend=backend,
        refresh_policy=policy,
        preset=preset,
        algorithm=algorithm,
        scale=scale,
        city_scale=city_scale,
        parity_pairs=parity_pairs,
        parity_seed=parity_seed,
        scenario_config=scenario_config,
    ))
    assert outcome.row is not None
    return outcome.row


def run_scenario_grid(
    scenarios: Sequence[str],
    backends: Sequence[str],
    policies: Sequence[str],
    **case_kwargs: Any,
) -> list[dict]:
    """Deprecated wrapper over ``run_grid(RunSpec.grid(mode="scenario", ...))``.

    This was the one code path behind the ``bench_scenarios`` refresh table
    and the CI scenario job; those now build :class:`RunSpec` grids
    directly.
    """
    _warn_deprecated(
        "run_scenario_grid", 'run_grid(RunSpec.grid(mode="scenario", ...))'
    )
    specs = RunSpec.grid(
        mode="scenario",
        scenarios=scenarios,
        backends=backends,
        policies=policies,
        **case_kwargs,
    )
    return [outcome.row for outcome in run_grid(specs) if outcome.row]


# ---------------------------------------------------------------------- #
# chaos grid (resilience layer under fault injection)
# ---------------------------------------------------------------------- #
#: Resilience knobs the chaos grid runs under.  The batch budget is charged
#: with *virtual* injected latency only (``count_real_dispatch_time=False``)
#: so breaker decisions -- and therefore the whole run -- are independent of
#: the host's wall clock; every accepted assignment is re-verified against
#: fresh Dijkstra.
CHAOS_RESILIENCE = ResilienceConfig(
    batch_time_budget=0.05,
    count_real_dispatch_time=False,
    probe_pairs=4,
    verify_assignments=True,
    breaker_threshold=2,
    recovery_interval=2,
)


def _chaos_impl(spec: "RunSpec") -> "RunResult":
    """Run one (scenario, backend, refresh-policy) cell under fault injection.

    The run is wrapped in a :class:`~repro.resilience.degrade.ResilienceManager`
    with the ``chaos`` preset's fault rates; it must complete without an
    unhandled exception and -- because ``verify_assignments`` is on -- with
    every accepted assignment's leg costs exact against fresh Dijkstra.
    The row carries the resilience counters next to the dispatch metrics.
    Deterministic: two identical specs inject the identical fault sequence
    and produce identical non-timing metrics (see
    :func:`deterministic_summary`).
    """
    scenario = spec.scenario
    backend = spec.backend
    policy = spec.refresh_policy
    assert isinstance(scenario, str) and backend and policy  # RunSpec-validated
    algorithm = spec.algorithm or "pruneGDP"
    chaos = spec.chaos if spec.chaos is not None else "flaky_oracle"
    chaos_config = make_chaos_config(chaos) if isinstance(chaos, str) else chaos
    manager = ResilienceManager(
        config=(
            spec.resilience if spec.resilience is not None else CHAOS_RESILIENCE
        ),
        chaos=chaos_config,
    )
    workload, built = make_scenario_workload(
        spec.preset,
        scenario,
        scale=spec.scale,
        city_scale=spec.city_scale,
        scenario_config=spec.scenario_config,
        simulation_overrides={"routing_backend": backend},
    )
    simulator = Simulator(
        network=workload.network,
        oracle=manager.make_oracle(workload.network, backend=backend),
        vehicles=workload.fresh_vehicles(),
        requests=list(workload.requests),
        dispatcher=make_dispatcher(algorithm),
        config=workload.simulation_config,
        record_events=False,
        timeline=built.make_timeline(),
        refresh_policy=make_refresh_policy(policy, config=built.config),
        resilience=manager,
    )
    result = simulator.run()
    metrics = result.metrics
    row = {
        "scenario": scenario,
        "backend": backend,
        "policy": policy,
        "events": metrics.scenario_events,
        "faults": metrics.faults_injected,
        "retries": metrics.oracle_retries,
        "breaker_trips": metrics.breaker_trips,
        "degraded": metrics.degraded_batches,
        "overruns": metrics.batch_overruns,
        "probe_failures": metrics.probe_failures,
        "self_heals": metrics.self_heals,
        "recovery_ms": metrics.recovery_seconds * 1e3,
        "rebuilds": metrics.oracle_rebuilds,
        "repairs": metrics.oracle_repairs,
        "fallback_q": metrics.oracle_fallback_queries,
        "service_rate": metrics.service_rate,
        "unified_cost": metrics.unified_cost,
        "dispatch_s": metrics.dispatch_seconds,
    }
    return RunResult(spec=spec, simulation=result, row=row)


def run_chaos_case(
    scenario: str,
    backend: str,
    policy: str,
    *,
    chaos: str | ChaosConfig = "flaky_oracle",
    preset: str = "nyc",
    algorithm: str = "pruneGDP",
    scale: float = 0.08,
    city_scale: float = 0.4,
    resilience: ResilienceConfig | None = None,
    scenario_config: ScenarioConfig | None = None,
) -> dict:
    """Deprecated wrapper over ``run(RunSpec(mode="chaos", ...))``."""
    _warn_deprecated("run_chaos_case", 'run(RunSpec(mode="chaos", ...))')
    outcome = run(RunSpec(
        mode="chaos",
        scenario=scenario,
        backend=backend,
        refresh_policy=policy,
        chaos=chaos,
        preset=preset,
        algorithm=algorithm,
        scale=scale,
        city_scale=city_scale,
        resilience=resilience,
        scenario_config=scenario_config,
    ))
    assert outcome.row is not None
    return outcome.row


def run_chaos_grid(
    scenarios: Sequence[str],
    backends: Sequence[str],
    policies: Sequence[str],
    **case_kwargs: Any,
) -> list[dict]:
    """Deprecated wrapper over ``run_grid(RunSpec.grid(mode="chaos", ...))``."""
    _warn_deprecated(
        "run_chaos_grid", 'run_grid(RunSpec.grid(mode="chaos", ...))'
    )
    specs = RunSpec.grid(
        mode="chaos",
        scenarios=scenarios,
        backends=backends,
        policies=policies,
        **case_kwargs,
    )
    return [outcome.row for outcome in run_grid(specs) if outcome.row]


def deterministic_summary(row: dict) -> dict:
    """Strip the timing-dependent columns from a chaos (or scenario) row.

    What remains must be bit-identical across two same-seed runs -- the
    reproducibility contract the chaos tests and the CI job assert.
    """
    timing = {"dispatch_s", "wall_clock_s"}
    return {
        key: value
        for key, value in row.items()
        if key not in timing and not key.endswith("_ms")
    }
