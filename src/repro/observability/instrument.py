"""Wiring helpers: attach a tracer to a run and its oracle in one place.

The instrumentation sites themselves live inside the subsystems (engine,
dispatchers, shareability builder, refresh policies, resilience manager)
and fire against the process-wide active tracer from
:mod:`repro.observability.trace`.  This module is the front door callers
actually use:

>>> from repro.observability import tracing
>>> with tracing(oracle=simulator.oracle) as tracer:
...     metrics = simulator.run(requests)
>>> len(tracer.records)  # doctest: +SKIP

:func:`tracing` installs a fresh :class:`SpanTracer` for the block,
switches the oracle's sampled query tracing on, and restores both on exit
-- so a traced run and an untraced run differ by exactly one ``with``
line.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .trace import DEFAULT_CAPACITY, SpanTracer, Tracer, use_tracer

if TYPE_CHECKING:
    from ..network.shortest_path import DistanceOracle

#: Default sampling interval for oracle point queries: one traced query per
#: N computed ones.  Dispatch issues thousands of queries per batch, so
#: even 1-in-100 sampling gives a dense latency picture per batch.
DEFAULT_ORACLE_SAMPLE_EVERY = 100


@dataclass(frozen=True)
class TraceConfig:
    """Knobs for :func:`tracing` (kept small on purpose).

    ``oracle_sample_every=0`` keeps span tracing on but leaves the oracle
    hot path completely untouched.
    """

    capacity: int = DEFAULT_CAPACITY
    oracle_sample_every: int = DEFAULT_ORACLE_SAMPLE_EVERY

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("TraceConfig.capacity must be at least 1")
        if self.oracle_sample_every < 0:
            raise ValueError("TraceConfig.oracle_sample_every must be non-negative")


def instrument_oracle(
    oracle: DistanceOracle, tracer: Tracer, *, every: int = DEFAULT_ORACLE_SAMPLE_EVERY
) -> None:
    """Switch sampled query tracing on for ``oracle`` (off if disabled tracer)."""
    oracle.set_query_tracing(tracer, every)


@contextmanager
def tracing(
    *,
    oracle: DistanceOracle | None = None,
    config: TraceConfig | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> Iterator[SpanTracer]:
    """Run a block with span tracing active; yields the collecting tracer.

    Installs a fresh :class:`SpanTracer` as the process-wide active tracer
    (every instrumented site in the simulator, dispatchers, refresh
    policies and resilience manager reports to it), and -- when ``oracle``
    is given -- enables sampled query tracing on it.  Both are restored /
    disabled on exit, so the tracer handed back is a finished, stable
    artifact ready for export.
    """
    cfg = config or TraceConfig()
    tracer = SpanTracer(cfg.capacity, clock=clock)
    try:
        with use_tracer(tracer):
            if oracle is not None and cfg.oracle_sample_every:
                instrument_oracle(oracle, tracer, every=cfg.oracle_sample_every)
            yield tracer
    finally:
        if oracle is not None:
            oracle.set_query_tracing(None)


__all__ = [
    "DEFAULT_ORACLE_SAMPLE_EVERY",
    "TraceConfig",
    "instrument_oracle",
    "tracing",
]
