"""Span tracing for the dispatch pipeline.

A *span* is one timed region of the pipeline -- a dispatch batch, the
shareability-graph update inside it, one sampled oracle query.  Spans nest:
entering a span pushes it on the tracer's stack, so each finished record
carries its parent's id and its nesting depth, and an exporter can rebuild
the tree.  Two clocks are recorded per span:

* **wall time** via ``time.perf_counter()`` (the DET001-sanctioned duration
  clock; it never feeds simulation logic, only reporting), and
* **virtual sim-time** -- the batch clock the simulator advances.  The
  engine calls :meth:`SpanTracer.set_sim_time` at every batch boundary, so
  spans opened deeper in the pipeline inherit the simulated timestamp
  without every layer having to thread ``now`` through its API.

Finished spans land in a bounded ring buffer (oldest evicted first, the
eviction count is kept), so tracing a long service-style run cannot grow
memory without bound.

Instrumented code never checks "is tracing on": it asks :func:`get_tracer`
for the active tracer and opens spans unconditionally.  When tracing is
disabled the active tracer is the :data:`NULL_TRACER` singleton whose
``span()`` returns one preallocated no-op span -- no allocation, no
branching in the instrumented code, overhead of a method call per *span*
(not per query; the oracle hot path additionally gates its sampling on a
plain integer, see ``DistanceOracle.set_query_tracing``).
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from types import TracebackType

#: Values a span tag may carry (kept JSON-serialisable by construction).
TagValue = int | float | str | bool

#: Default ring-buffer capacity (finished spans kept per tracer).
DEFAULT_CAPACITY = 65_536


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    span_id: int
    parent_id: int | None
    name: str
    depth: int
    #: Virtual simulation time the span was opened at (``None`` when no
    #: sim-time was ever set, e.g. outside a simulation run).
    sim_time: float | None
    #: Wall-clock start, in seconds relative to the tracer's epoch (the
    #: clock value when the tracer was created).
    start: float
    #: Wall-clock duration in seconds.
    duration: float
    tags: dict[str, TagValue] = field(default_factory=dict)


class NoopSpan:
    """The do-nothing span: one shared instance serves every disabled site."""

    __slots__ = ()

    def __enter__(self) -> NoopSpan:
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None

    def tag(self, key: str, value: TagValue) -> None:
        """Discard the tag."""


#: The preallocated no-op span returned by the null tracer.
NOOP_SPAN = NoopSpan()


class NullTracer:
    """Disabled tracer: every call is a no-op returning shared singletons."""

    __slots__ = ()

    enabled = False
    evicted = 0

    @property
    def records(self) -> tuple[SpanRecord, ...]:
        """Always empty."""
        return ()

    def span(self, name: str, *, sim_time: float | None = None, **tags: TagValue) -> NoopSpan:
        """Return the shared no-op span (no allocation)."""
        return NOOP_SPAN

    def event(
        self, name: str, *, duration: float = 0.0, sim_time: float | None = None, **tags: TagValue
    ) -> None:
        """Discard the event."""

    def set_sim_time(self, now: float) -> None:
        """Discard the sim-time update."""

    def clear(self) -> None:
        """Nothing to clear."""


#: The process-wide disabled tracer (also the default active tracer).
NULL_TRACER = NullTracer()


class _Span:
    """A live (entered, not yet exited) span of a :class:`SpanTracer`."""

    __slots__ = ("_start", "_tracer", "depth", "name", "parent_id", "sim_time", "span_id", "tags")

    def __init__(
        self,
        tracer: SpanTracer,
        name: str,
        sim_time: float | None,
        tags: dict[str, TagValue],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.sim_time = sim_time
        self.tags = tags
        self.span_id = 0
        self.parent_id: int | None = None
        self.depth = 0
        self._start = 0.0

    def tag(self, key: str, value: TagValue) -> None:
        """Attach (or overwrite) one typed tag on the live span."""
        self.tags[key] = value

    def __enter__(self) -> _Span:
        tracer = self._tracer
        stack = tracer._stack
        self.span_id = tracer._allocate_id()
        self.parent_id = stack[-1].span_id if stack else None
        self.depth = len(stack)
        stack.append(self)
        self._start = tracer._clock()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        tracer = self._tracer
        end = tracer._clock()
        stack = tracer._stack
        # Exiting out of order (an exception unwinding through several
        # spans) closes every span opened after this one as well.
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        tracer._finish(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                depth=self.depth,
                sim_time=self.sim_time,
                start=self._start - tracer._epoch,
                duration=end - self._start,
                tags=self.tags,
            )
        )


class SpanTracer:
    """Collecting tracer: nested spans into a bounded ring buffer.

    Parameters
    ----------
    capacity:
        Maximum number of finished spans kept; the oldest are evicted once
        the buffer is full (:attr:`evicted` counts them).
    clock:
        Monotonic duration clock.  Defaults to :func:`time.perf_counter`;
        tests inject a deterministic fake so exported traces are stable.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be at least 1")
        self.capacity = capacity
        self._clock = clock
        self._epoch = clock()
        self._buffer: deque[SpanRecord] = deque(maxlen=capacity)
        self._stack: list[_Span] = []
        self._next_id = 1
        self.evicted = 0
        self._sim_time: float | None = None

    # -- recording ------------------------------------------------------ #
    def span(self, name: str, *, sim_time: float | None = None, **tags: TagValue) -> _Span:
        """Open a span; use as ``with tracer.span("dispatch.batch"): ...``.

        ``sim_time`` defaults to the tracer's current virtual time (see
        :meth:`set_sim_time`).
        """
        return _Span(self, name, self._sim_time if sim_time is None else sim_time, tags)

    def event(
        self, name: str, *, duration: float = 0.0, sim_time: float | None = None, **tags: TagValue
    ) -> None:
        """Record a leaf span without the context-manager ceremony.

        Used where the duration was measured by the caller already (oracle
        rebuild/repair seconds) or where only the occurrence matters
        (breaker transitions); the event is parented to the innermost open
        span.
        """
        stack = self._stack
        now = self._clock()
        self._finish(
            SpanRecord(
                span_id=self._allocate_id(),
                parent_id=stack[-1].span_id if stack else None,
                name=name,
                depth=len(stack),
                sim_time=self._sim_time if sim_time is None else sim_time,
                start=now - duration - self._epoch,
                duration=duration,
                tags=tags,
            )
        )

    def set_sim_time(self, now: float) -> None:
        """Set the virtual timestamp inherited by subsequently opened spans."""
        self._sim_time = now

    # -- inspection ----------------------------------------------------- #
    @property
    def records(self) -> tuple[SpanRecord, ...]:
        """Finished spans in completion order (children before parents)."""
        return tuple(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self._buffer)

    def clear(self) -> None:
        """Drop every finished span and reset the eviction counter."""
        self._buffer.clear()
        self.evicted = 0

    def children_of(self, span_id: int) -> list[SpanRecord]:
        """Direct children of one span, in completion order."""
        return [record for record in self._buffer if record.parent_id == span_id]

    # -- internals ------------------------------------------------------ #
    def _allocate_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _finish(self, record: SpanRecord) -> None:
        buffer = self._buffer
        if len(buffer) == self.capacity:
            self.evicted += 1
        buffer.append(record)


#: The process-wide active tracer consulted by instrumented code.
#: Deliberately process-local: executor workers must install their own
#: tracer (revisit when the zone-sharded multiprocessing PR lands).
_active: NullTracer | SpanTracer = NULL_TRACER  # repro-lint: disable=CONC001 process-local tracer singleton by design; workers install their own

#: Union type of the two tracer implementations (instrumentation sites
#: accept either).
Tracer = NullTracer | SpanTracer


def get_tracer() -> Tracer:
    """The active tracer (the :data:`NULL_TRACER` when tracing is off)."""
    return _active


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install ``tracer`` as the active tracer; returns the previous one.

    ``None`` disables tracing (installs the null tracer).  Prefer the
    :func:`use_tracer` context manager, which restores the previous tracer
    on exit.
    """
    global _active
    previous = _active
    _active = NULL_TRACER if tracer is None else tracer
    return previous


class use_tracer:
    """Context manager installing a tracer for the duration of a block."""

    def __init__(self, tracer: Tracer | None) -> None:
        self._tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = set_tracer(self._tracer)
        return _active

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        set_tracer(self._previous)


__all__ = [
    "DEFAULT_CAPACITY",
    "NOOP_SPAN",
    "NULL_TRACER",
    "NoopSpan",
    "NullTracer",
    "SpanRecord",
    "SpanTracer",
    "TagValue",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]
