"""Typed metric registry: Counter / Gauge / Histogram behind one namespace.

``MetricsCollector`` grew one dataclass field per counter for three PRs in
a row; every new subsystem widened it by hand and every exporter had to
know the full field list.  The registry inverts that: subsystems *register*
metrics under a dotted name (``dispatch.batches``, ``oracle.query_seconds``)
and exporters iterate the registry, so adding a metric touches exactly one
call site.  Three metric types, mirroring the Prometheus data model:

* :class:`Counter` -- monotonically non-decreasing count.
* :class:`Gauge` -- a value that can go up and down (peak tracking built in).
* :class:`Histogram` -- observations bucketed against fixed finite bounds,
  with count / sum / per-bucket cumulative counts and interpolated
  percentile estimates.

Registration is idempotent get-or-create: two subsystems asking for the
same name receive the same instance, and asking for an existing name with
a different type (or different histogram buckets) raises -- silently
returning a mismatched metric would corrupt both callers' data.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterator, Sequence
from typing import Union

#: Default histogram bounds for pipeline latencies, in seconds.  Spread
#: log-ish from 50us to 30s so both a single oracle query and a full
#: rebuild land in an interior bucket.
LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.00005,
    0.0002,
    0.001,
    0.005,
    0.02,
    0.1,
    0.5,
    2.0,
    10.0,
    30.0,
)


class MetricError(ValueError):
    """Conflicting registration or invalid metric operation."""


class Counter:
    """Monotonically non-decreasing counter."""

    __slots__ = ("description", "name", "value")

    kind = "counter"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise MetricError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """Point-in-time value; remembers the peak it has reached."""

    __slots__ = ("description", "name", "peak", "value")

    kind = "gauge"

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0.0
        self.peak = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = value
        if value > self.peak:
            self.peak = value

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        self.set(self.value + amount)


class Histogram:
    """Observations against fixed finite bucket bounds.

    ``bounds`` are the inclusive upper edges of the finite buckets, in
    strictly increasing order; one implicit overflow bucket catches
    everything above the last bound (the Prometheus ``+Inf`` bucket).
    """

    __slots__ = ("bounds", "counts", "description", "name", "total", "total_sum")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        *,
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricError(f"histogram {name!r} needs >= 1 bucket")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise MetricError(f"histogram {name!r} buckets must strictly increase: {bounds}")
        self.name = name
        self.description = description
        self.bounds = bounds
        # counts[i] observations fell in bucket i; counts[-1] is overflow.
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.total_sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.total_sum += value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total_sum / self.total if self.total else 0.0

    def cumulative(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(upper_bound, cumulative_count)`` pairs.

        The final pair uses ``float("inf")`` as its bound and always equals
        :attr:`total`.
        """
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            pairs.append((bound, running))
        pairs.append((float("inf"), self.total))
        return pairs

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0 <= q <= 100) from the buckets.

        Linear interpolation within the winning bucket, Prometheus
        ``histogram_quantile`` style; observations in the overflow bucket
        are attributed to the last finite bound.  Exact values are not
        recoverable from a histogram -- use this for reporting, not logic.
        """
        if not 0 <= q <= 100:
            raise MetricError(f"percentile out of range: {q}")
        if self.total == 0:
            return 0.0
        rank = q / 100.0 * self.total
        running = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if running + count >= rank:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index]
                fraction = (rank - running) / count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
            running += count
        return self.bounds[-1]


Metric = Union[Counter, Gauge, Histogram]


class MetricRegistry:
    """Namespace of typed metrics with idempotent get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    # -- registration --------------------------------------------------- #
    def counter(self, name: str, description: str = "") -> Counter:
        """Get or create the counter ``name``."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Counter(name, description)
            self._metrics[name] = metric
        elif not isinstance(metric, Counter):
            raise MetricError(f"{name!r} already registered as a {metric.kind}, not a counter")
        return metric

    def gauge(self, name: str, description: str = "") -> Gauge:
        """Get or create the gauge ``name``."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Gauge(name, description)
            self._metrics[name] = metric
        elif not isinstance(metric, Gauge):
            raise MetricError(f"{name!r} already registered as a {metric.kind}, not a gauge")
        return metric

    def histogram(
        self,
        name: str,
        description: str = "",
        *,
        buckets: Sequence[float] = LATENCY_BUCKETS_S,
    ) -> Histogram:
        """Get or create the histogram ``name`` (bucket bounds must match)."""
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, description, buckets=buckets)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise MetricError(f"{name!r} already registered as a {metric.kind}, not a histogram")
        elif metric.bounds != tuple(float(b) for b in buckets):
            raise MetricError(
                f"histogram {name!r} re-registered with different buckets: "
                f"{metric.bounds} vs {tuple(buckets)}"
            )
        return metric

    # -- inspection ----------------------------------------------------- #
    def get(self, name: str) -> Metric | None:
        """The metric registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        """Metrics in sorted-name order (deterministic exports)."""
        for name in sorted(self._metrics):
            yield self._metrics[name]

    def as_dict(self) -> dict[str, float]:
        """Flat ``{name: value}`` snapshot.

        Counters and gauges map to their value; histograms expand to
        ``name.count`` / ``name.sum`` (percentiles are reporting-layer
        concerns, see :mod:`repro.observability.export`).
        """
        snapshot: dict[str, float] = {}
        for metric in self:
            if isinstance(metric, Histogram):
                snapshot[f"{metric.name}.count"] = float(metric.total)
                snapshot[f"{metric.name}.sum"] = metric.total_sum
            else:
                snapshot[metric.name] = metric.value
        return snapshot


__all__ = [
    "LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricError",
    "MetricRegistry",
]
