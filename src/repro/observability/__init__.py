"""End-to-end observability for the dispatch pipeline.

Four pieces (see DESIGN.md "Observability"):

* :mod:`.trace` -- nested span tracer with virtual sim-time, a bounded
  ring buffer, and a zero-allocation null tracer when disabled.
* :mod:`.registry` -- typed metric registry (Counter / Gauge / Histogram
  with fixed buckets) that :class:`repro.simulation.MetricsCollector`
  exports into, so new subsystems register metrics instead of widening a
  dataclass.
* :mod:`.instrument` -- the front door: ``with tracing(oracle=...) as t:``
  activates every instrumented site in the pipeline for the block.
* :mod:`.export` -- JSONL trace, Prometheus text exposition, and a
  markdown run report; :func:`write_run_artifacts` bundles all three.
"""

from .export import (
    TRACE_SCHEMA_VERSION,
    SpanAggregate,
    aggregate_spans,
    markdown_report,
    prometheus_text,
    span_to_dict,
    spans_to_jsonl,
    write_run_artifacts,
)
from .instrument import (
    DEFAULT_ORACLE_SAMPLE_EVERY,
    TraceConfig,
    instrument_oracle,
    tracing,
)
from .registry import (
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricError,
    MetricRegistry,
)
from .trace import (
    DEFAULT_CAPACITY,
    NOOP_SPAN,
    NULL_TRACER,
    NoopSpan,
    NullTracer,
    SpanRecord,
    SpanTracer,
    TagValue,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "DEFAULT_ORACLE_SAMPLE_EVERY",
    "LATENCY_BUCKETS_S",
    "NOOP_SPAN",
    "NULL_TRACER",
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricError",
    "MetricRegistry",
    "NoopSpan",
    "NullTracer",
    "SpanAggregate",
    "SpanRecord",
    "SpanTracer",
    "TagValue",
    "TraceConfig",
    "Tracer",
    "aggregate_spans",
    "get_tracer",
    "instrument_oracle",
    "markdown_report",
    "prometheus_text",
    "set_tracer",
    "span_to_dict",
    "spans_to_jsonl",
    "tracing",
    "use_tracer",
    "write_run_artifacts",
]
