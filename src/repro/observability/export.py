"""Machine-readable exporters: JSONL traces, Prometheus text, markdown report.

Three formats, three audiences:

* **JSONL** (one span object per line) -- for trace tooling and ad-hoc
  ``jq``; append-friendly and streamable, unlike a single JSON array.
* **Prometheus text exposition** -- for scraping a long-lived dispatch
  service; rendered from a :class:`~repro.observability.registry.MetricRegistry`
  so anything registered shows up without exporter changes.
* **Markdown run report** -- for humans and CI job summaries: headline
  metrics, per-stage span aggregates, dispatch-latency percentiles.

All three are pure functions of their inputs (deterministic given a
deterministic tracer clock), which is what makes golden-file testing
possible.  :func:`write_run_artifacts` bundles them for the harness and
bench scripts.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from .registry import Histogram, MetricRegistry
from .trace import SpanRecord

if TYPE_CHECKING:
    from .trace import Tracer

#: Schema version stamped on every exported span line so downstream
#: consumers can detect format changes.
TRACE_SCHEMA_VERSION = 1


# --------------------------------------------------------------------- #
# JSONL trace export
# --------------------------------------------------------------------- #
def span_to_dict(record: SpanRecord) -> dict[str, object]:
    """One span as a JSON-ready dict (stable key order)."""
    return {
        "v": TRACE_SCHEMA_VERSION,
        "span_id": record.span_id,
        "parent_id": record.parent_id,
        "name": record.name,
        "depth": record.depth,
        "sim_time": record.sim_time,
        "start_s": round(record.start, 9),
        "duration_s": round(record.duration, 9),
        "tags": record.tags,
    }


def spans_to_jsonl(records: Iterable[SpanRecord]) -> str:
    """Render spans as JSON Lines (completion order, one object per line)."""
    lines = [json.dumps(span_to_dict(record), sort_keys=False) for record in records]
    return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------- #
def _prom_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus charset."""
    sanitised = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricRegistry, *, prefix: str = "repro") -> str:
    """Render a registry in the Prometheus text exposition format (v0.0.4).

    Metric names are ``<prefix>_<dotted name with dots as underscores>``;
    histograms expand into ``_bucket{le=...}`` / ``_sum`` / ``_count``
    series exactly as a Prometheus client library would.
    """
    out: list[str] = []
    for metric in registry:
        name = _prom_name(metric.name)
        if prefix:
            name = f"{_prom_name(prefix)}_{name}"
        if metric.description:
            out.append(f"# HELP {name} {metric.description}")
        out.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, Histogram):
            for bound, cumulative in metric.cumulative():
                out.append(f'{name}_bucket{{le="{_prom_value(bound)}"}} {cumulative}')
            out.append(f"{name}_sum {_prom_value(metric.total_sum)}")
            out.append(f"{name}_count {metric.total}")
        else:
            out.append(f"{name} {_prom_value(metric.value)}")
    return "\n".join(out) + ("\n" if out else "")


# --------------------------------------------------------------------- #
# Markdown run report
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SpanAggregate:
    """Per-span-name rollup used by the markdown report."""

    name: str
    count: int
    total_s: float
    max_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


def aggregate_spans(records: Iterable[SpanRecord]) -> list[SpanAggregate]:
    """Roll spans up by name, ordered by descending total duration."""
    totals: dict[str, list[float]] = {}
    for record in records:
        bucket = totals.setdefault(record.name, [0.0, 0.0, 0.0])
        bucket[0] += 1
        bucket[1] += record.duration
        if record.duration > bucket[2]:
            bucket[2] = record.duration
    aggregates = [
        SpanAggregate(name=name, count=int(count), total_s=total, max_s=peak)
        for name, (count, total, peak) in totals.items()
    ]
    aggregates.sort(key=lambda agg: (-agg.total_s, agg.name))
    return aggregates


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 0.001:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def _fmt_summary_value(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def markdown_report(
    title: str,
    *,
    summary: Mapping[str, object] | None = None,
    tracer: Tracer | None = None,
    registry: MetricRegistry | None = None,
    highlight_keys: Iterable[str] = (),
) -> str:
    """Human-facing run report (also rendered into CI job summaries).

    Sections are emitted only for the inputs provided, so the same function
    serves a metrics-only bench run and a fully traced harness run.
    ``highlight_keys`` pulls selected summary keys into a headline table;
    the full summary follows in a collapsible block.
    """
    lines: list[str] = [f"# {title}", ""]

    if summary:
        highlights = [key for key in highlight_keys if key in summary]
        if highlights:
            lines += ["| metric | value |", "| --- | --- |"]
            lines += [f"| {key} | {_fmt_summary_value(summary[key])} |" for key in highlights]
            lines.append("")
        lines += ["<details><summary>Full metric summary</summary>", ""]
        lines += ["| key | value |", "| --- | --- |"]
        lines += [
            f"| {key} | {_fmt_summary_value(value)} |" for key, value in sorted(summary.items())
        ]
        lines += ["", "</details>", ""]

    if tracer is not None and tracer.records:
        lines += [
            "## Stage timings",
            "",
            "| span | count | total | mean | max |",
            "| --- | --- | --- | --- | --- |",
        ]
        for agg in aggregate_spans(tracer.records):
            lines.append(
                f"| {agg.name} | {agg.count} | {_fmt_seconds(agg.total_s)}"
                f" | {_fmt_seconds(agg.mean_s)} | {_fmt_seconds(agg.max_s)} |"
            )
        lines.append("")
        if tracer.evicted:
            lines += [f"_{tracer.evicted} oldest spans evicted from the ring buffer._", ""]

    if registry is not None:
        histograms = [metric for metric in registry if isinstance(metric, Histogram)]
        if histograms:
            lines += [
                "## Latency distributions",
                "",
                "| histogram | count | mean | p50 | p95 | max bucket |",
                "| --- | --- | --- | --- | --- | --- |",
            ]
            for hist in histograms:
                # Upper bound of the highest non-empty bucket (overflow
                # observations clamp to the last finite bound).
                if hist.counts[-1]:
                    top = hist.bounds[-1]
                else:
                    top = next(
                        (
                            bound
                            for bound, count in zip(
                                reversed(hist.bounds), reversed(hist.counts[:-1])
                            )
                            if count
                        ),
                        0.0,
                    )
                lines.append(
                    f"| {hist.name} | {hist.total} | {_fmt_seconds(hist.mean)}"
                    f" | {_fmt_seconds(hist.percentile(50))}"
                    f" | {_fmt_seconds(hist.percentile(95))} | {_fmt_seconds(top)} |"
                )
            lines.append("")

    return "\n".join(lines).rstrip() + "\n"


# --------------------------------------------------------------------- #
# Bundled artifact writer
# --------------------------------------------------------------------- #
def write_run_artifacts(
    out_dir: str | Path,
    name: str,
    *,
    title: str | None = None,
    summary: Mapping[str, object] | None = None,
    tracer: Tracer | None = None,
    registry: MetricRegistry | None = None,
    highlight_keys: Iterable[str] = (),
) -> dict[str, Path]:
    """Write the three export formats for one run; returns ``{format: path}``.

    Emits ``<name>.trace.jsonl`` (when a tracer is given), ``<name>.prom``
    (when a registry is given), and always ``<name>.report.md``.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}

    if tracer is not None:
        trace_path = out / f"{name}.trace.jsonl"
        trace_path.write_text(spans_to_jsonl(tracer.records), encoding="utf-8")
        written["trace_jsonl"] = trace_path

    if registry is not None:
        prom_path = out / f"{name}.prom"
        prom_path.write_text(prometheus_text(registry), encoding="utf-8")
        written["prometheus"] = prom_path

    report_path = out / f"{name}.report.md"
    report_path.write_text(
        markdown_report(
            title or name,
            summary=summary,
            tracer=tracer,
            registry=registry,
            highlight_keys=highlight_keys,
        ),
        encoding="utf-8",
    )
    written["report_md"] = report_path
    return written


__all__ = [
    "TRACE_SCHEMA_VERSION",
    "SpanAggregate",
    "aggregate_spans",
    "markdown_report",
    "prometheus_text",
    "span_to_dict",
    "spans_to_jsonl",
    "write_run_artifacts",
]
