"""Named workloads mirroring the paper's three datasets.

Each preset scales the real dataset down to laptop size while keeping the
ratios that drive the comparison between algorithms: requests per vehicle,
requests per batch, trip-length distribution and spatial concentration.

* ``chd`` -- Didi Chengdu: larger, sparser network, moderate demand density.
* ``nyc`` -- NYC yellow/green taxi: compact network, roughly double the
  request rate per unit time, concentrated demand.
* ``cainiao`` -- Cainiao Shanghai deliveries: dispersed demand, longer trips
  and more generous deadlines (the paper uses gamma in [1.8, 2.2] there).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..config import DemandSurge, SimulationConfig, WorkloadConfig
from ..exceptions import WorkloadError
from ..model.request import Request
from ..model.vehicle import Vehicle
from ..network.generators import make_city
from ..network.road_network import RoadNetwork
from ..network.shortest_path import DistanceOracle
from .requests_gen import RequestGenerator, generate_vehicles

@dataclass(frozen=True)
class PresetEntry:
    """One named preset: city template plus its two configurations."""

    city: str
    workload: WorkloadConfig
    simulation: SimulationConfig


#: Paper-inspired workload presets.
#:
#: The real traces span a full day; a faithful laptop-scale reproduction has
#: to compress time while preserving the three ratios that decide which
#: algorithm wins: requests per batch (batch density), concurrent trips per
#: vehicle (supply pressure) and trip duration relative to the maximum
#: waiting time.  Each preset therefore uses a fixed ``arrival_rate`` (so the
#: horizon scales with the request count), trips a few minutes long and a
#: proportionally reduced waiting budget.  ``num_requests`` / ``num_vehicles``
#: are the defaults at ``scale=1.0``; the experiment harness sweeps them.
WORKLOAD_PRESETS: dict[str, PresetEntry] = {
    "chd": PresetEntry(
        city="chd",
        workload=WorkloadConfig(
            name="CHD",
            num_requests=2400,
            num_vehicles=130,
            arrival_rate=1.0,
            trip_log_mean=math.log(130.0),
            trip_log_sigma=0.55,
            num_hotspots=8,
            hotspot_fraction=0.55,
            seed=11,
        ),
        simulation=SimulationConfig(max_wait=90.0),
    ),
    "nyc": PresetEntry(
        city="nyc",
        workload=WorkloadConfig(
            name="NYC",
            num_requests=2400,
            num_vehicles=130,
            arrival_rate=1.5,
            trip_log_mean=math.log(110.0),
            trip_log_sigma=0.5,
            num_hotspots=5,
            hotspot_fraction=0.75,
            seed=22,
        ),
        simulation=SimulationConfig(max_wait=75.0),
    ),
    "cainiao": PresetEntry(
        city="cainiao",
        workload=WorkloadConfig(
            name="Cainiao",
            num_requests=1600,
            num_vehicles=100,
            arrival_rate=0.7,
            trip_log_mean=math.log(170.0),
            trip_log_sigma=0.6,
            num_hotspots=12,
            hotspot_fraction=0.4,
            seed=33,
        ),
        simulation=SimulationConfig(gamma=2.0, capacity=4, max_wait=150.0),
    ),
}


@dataclass
class Workload:
    """A fully materialised workload ready to be simulated."""

    name: str
    network: RoadNetwork
    oracle: DistanceOracle
    requests: list[Request]
    workload_config: WorkloadConfig
    simulation_config: SimulationConfig
    _vehicle_seed_offset: int = field(default=1000, repr=False)

    def fresh_vehicles(self) -> list[Vehicle]:
        """A brand-new fleet (vehicles are mutable, so one per simulation)."""
        return generate_vehicles(
            self.network,
            self.workload_config,
            self.simulation_config,
            seed_offset=self._vehicle_seed_offset,
        )

    def fresh_oracle(
        self, *, cache_size: int = 200_000, backend: str | None = None
    ) -> DistanceOracle:
        """A new distance oracle with clean statistics over the same network.

        The routing backend defaults to the simulation configuration's
        ``routing_backend``; the preprocessed structures (CSR / hierarchy /
        labels) are shared across oracles over the same network, so a fresh
        oracle only resets the cache and the statistics.
        """
        return DistanceOracle(
            self.network,
            cache_size=cache_size,
            backend=backend or self.simulation_config.routing_backend,
        )

    @property
    def num_requests(self) -> int:
        """Number of requests in the trace."""
        return len(self.requests)


def resolve_preset_configs(
    preset: str,
    *,
    scale: float = 1.0,
    vehicle_scale: float = 1.0,
    workload_overrides: dict[str, object] | None = None,
    simulation_overrides: dict[str, object] | None = None,
) -> tuple[str, WorkloadConfig, SimulationConfig]:
    """Resolve a preset into ``(city_name, workload_config, simulation_config)``.

    Factored out of :func:`make_workload` so callers that need the scaled
    configuration *before* building the workload (the scenario engine derives
    event times from the effective horizon and cancellation targets from the
    request count) resolve it exactly once, the same way.
    """
    key = preset.lower()
    if key not in WORKLOAD_PRESETS:
        raise WorkloadError(
            f"unknown workload preset {preset!r}; choose from {sorted(WORKLOAD_PRESETS)}"
        )
    if scale <= 0 or vehicle_scale <= 0:
        raise WorkloadError("scale and vehicle_scale must be positive")
    entry = WORKLOAD_PRESETS[key]
    workload_config = entry.workload
    simulation_config = entry.simulation
    scaled_fields: dict[str, object] = {
        "num_requests": max(int(round(workload_config.num_requests * scale)), 1),
        "num_vehicles": max(int(round(workload_config.num_vehicles * vehicle_scale)), 1),
    }
    scaled_fields.update(workload_overrides or {})
    workload_config = workload_config.with_overrides(**scaled_fields)
    if simulation_overrides:
        simulation_config = simulation_config.with_overrides(**simulation_overrides)
    return entry.city, workload_config, simulation_config


def make_workload(
    preset: str = "nyc",
    *,
    scale: float = 1.0,
    vehicle_scale: float = 1.0,
    city_scale: float = 0.7,
    workload_overrides: dict[str, object] | None = None,
    simulation_overrides: dict[str, object] | None = None,
    network: RoadNetwork | None = None,
    surges: Sequence[DemandSurge] = (),
) -> Workload:
    """Build one of the named workloads.

    Parameters
    ----------
    preset:
        ``"chd"``, ``"nyc"`` or ``"cainiao"``.
    scale:
        Multiplies the number of requests.  Because every preset fixes the
        arrival rate, scaling the request count shortens or lengthens the
        simulated horizon while keeping the per-batch density -- the fleet
        size is deliberately *not* scaled with it.
    vehicle_scale:
        Multiplies the fleet size independently of the request count.
    city_scale:
        Multiplies the road-network size relative to the preset city.
    workload_overrides / simulation_overrides:
        Field overrides applied on top of the preset configurations, e.g.
        ``simulation_overrides={"gamma": 1.8}`` for the deadline sweep.
    network:
        A prebuilt city to generate over (the scenario engine derives zones
        and corridors from the network before generating demand on it);
        ``city_scale`` is ignored then.
    surges:
        :class:`~repro.config.DemandSurge` windows modulating the request
        generator's arrival intensity and spatial anchoring.
    """
    city_name, workload_config, simulation_config = resolve_preset_configs(
        preset,
        scale=scale,
        vehicle_scale=vehicle_scale,
        workload_overrides=workload_overrides,
        simulation_overrides=simulation_overrides,
    )
    if network is None:
        network = make_city(city_name, scale=city_scale)
    oracle = DistanceOracle(network, backend=simulation_config.routing_backend)
    generator = RequestGenerator(network, oracle, workload_config, simulation_config)
    requests = generator.generate(surges=surges)
    return Workload(
        name=workload_config.name,
        network=network,
        oracle=oracle,
        requests=requests,
        workload_config=workload_config,
        simulation_config=simulation_config,
    )
