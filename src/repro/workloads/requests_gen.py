"""Synthetic request and fleet generation.

The generator reproduces the statistical properties the dispatch algorithms
are sensitive to:

* **trip lengths** follow a log-normal distribution (Section III-B of the
  paper fits a log-normal to the Chengdu and NYC trip-length histograms),
* **spatial concentration**: a configurable fraction of origins is drawn
  from a small number of hotspots, mimicking the compact demand of NYC
  versus the dispersed demand of the Cainiao delivery workload, and
* **arrival process**: request release times form a homogeneous Poisson
  process over the horizon (the paper's batches then slice this stream).

The scenario engine modulates the generator through
:class:`~repro.config.DemandSurge` windows: inside a window the arrival
intensity is multiplied (piecewise-constant thinning conditioned on the
total count) and a configurable fraction of the requests is anchored to the
surge center -- origins near it for ``"outbound"`` surges (a venue
emptying), destinations near it for ``"inbound"`` ones (commuters heading
downtown).
"""

from __future__ import annotations

import math
# DET002 audit: every draw below flows through a seeded random.Random
# stream; the module-global generator is never called (repro-lint enforced).
import random
from collections.abc import Sequence

from ..config import DemandSurge, SimulationConfig, WorkloadConfig
from ..exceptions import WorkloadError
from ..model.request import Request
from ..model.vehicle import Vehicle
from ..network.road_network import RoadNetwork
from ..network.shortest_path import DistanceOracle


class RequestGenerator:
    """Generates a synthetic request trace over a road network."""

    def __init__(
        self,
        network: RoadNetwork,
        oracle: DistanceOracle,
        workload: WorkloadConfig,
        simulation: SimulationConfig,
    ) -> None:
        self._network = network
        self._oracle = oracle
        self._workload = workload
        self._simulation = simulation
        self._rng = random.Random(workload.seed)
        self._nodes = list(network.nodes())
        if not self._nodes:
            raise WorkloadError("cannot generate requests on an empty network")
        self._hotspots = self._pick_hotspots()

    # ------------------------------------------------------------------ #
    def generate(self, *, surges: Sequence[DemandSurge] = ()) -> list[Request]:
        """Generate the configured number of requests, sorted by release time.

        ``surges`` (scenario engine) reshape the arrival intensity and anchor
        a fraction of in-window trips to the surge centers; without them the
        trace is the homogeneous baseline.
        """
        workload = self._workload
        horizon = workload.effective_horizon
        release_times = self._poisson_arrivals(
            workload.num_requests, horizon, surges=surges
        )
        requests: list[Request] = []
        for request_id, release in enumerate(release_times):
            source, destination, direct_cost = self._sample_trip(
                release_time=release, surges=surges
            )
            riders = self._sample_riders()
            requests.append(
                Request.create(
                    request_id=request_id,
                    source=source,
                    destination=destination,
                    release_time=release,
                    direct_cost=direct_cost,
                    gamma=self._simulation.gamma,
                    max_wait=self._simulation.max_wait,
                    riders=riders,
                )
            )
        requests.sort(key=lambda r: (r.release_time, r.request_id))
        return requests

    # ------------------------------------------------------------------ #
    # sampling primitives
    # ------------------------------------------------------------------ #
    def _pick_hotspots(self) -> list[int]:
        count = max(self._workload.num_hotspots, 0)
        if count == 0:
            return []
        count = min(count, len(self._nodes))
        return self._rng.sample(self._nodes, count)

    def _poisson_arrivals(
        self,
        count: int,
        horizon: float,
        *,
        surges: Sequence[DemandSurge] = (),
    ) -> list[float]:
        """Release times of a Poisson process conditioned on count.

        Without surges the process is homogeneous.  Active surge windows
        multiply the intensity piecewise-constantly (overlapping windows
        compound); times are drawn by inverting the piecewise-linear CDF so
        one uniform draw per request keeps the sampling deterministic under
        the workload seed.
        """
        active = [
            s for s in surges if s.rate_multiplier != 1.0 and s.start < horizon
        ]
        if not active:
            return sorted(self._rng.uniform(0.0, horizon) for _ in range(count))
        bounds = {0.0, horizon}
        for surge in active:
            bounds.add(min(max(surge.start, 0.0), horizon))
            bounds.add(min(max(surge.end, 0.0), horizon))
        edges = sorted(bounds)
        segments: list[tuple[float, float, float]] = []  # (start, end, weight)
        total = 0.0
        for a, b in zip(edges, edges[1:]):
            midpoint = (a + b) / 2.0
            rate = 1.0
            for surge in active:
                if surge.active(midpoint):
                    rate *= surge.rate_multiplier
            weight = rate * (b - a)
            segments.append((a, b, weight))
            total += weight
        if total <= 0.0:
            # Every window zeroed out; fall back to the homogeneous process.
            return sorted(self._rng.uniform(0.0, horizon) for _ in range(count))
        times: list[float] = []
        last = len(segments) - 1
        for _ in range(count):
            r = self._rng.uniform(0.0, total)
            for index, (a, b, weight) in enumerate(segments):
                # The index check catches the float residue of the repeated
                # subtraction: without it a residual a few ulps above the
                # final weight would drop the request silently.
                if r <= weight or index == last:
                    fraction = min(r / weight, 1.0) if weight > 0 else 0.0
                    times.append(a + fraction * (b - a))
                    break
                r -= weight
        return sorted(times)

    def _sample_riders(self) -> int:
        """Geometric-tailed rider count with the configured mean."""
        mean = self._workload.mean_riders
        extra_probability = max(min(1.0 - 1.0 / mean, 0.95), 0.0)
        riders = 1
        while riders < 6 and self._rng.random() < extra_probability:
            riders += 1
        return riders

    def _sample_source(self) -> int:
        if self._hotspots and self._rng.random() < self._workload.hotspot_fraction:
            hotspot = self._rng.choice(self._hotspots)
            return self._near_node(hotspot)
        return self._rng.choice(self._nodes)

    def _near_node(self, node: int, *, spread: float = 700.0) -> int:
        """A node close to ``node`` (Gaussian jitter snapped to the network)."""
        x, y = self._network.position(node)
        jitter_x = x + self._rng.gauss(0.0, spread)
        jitter_y = y + self._rng.gauss(0.0, spread)
        return self._network.nearest_node(jitter_x, jitter_y)

    def _sample_trip(
        self,
        *,
        release_time: float = 0.0,
        surges: Sequence[DemandSurge] = (),
    ) -> tuple[int, int, float]:
        """Sample (source, destination, direct cost) with a log-normal length.

        A surge window with a center that is active at ``release_time``
        anchors the trip with probability ``attraction``: outbound surges
        pin the origin near the center, inbound surges the destination.
        """
        workload = self._workload
        surge = next(
            (
                s
                for s in surges
                if s.center is not None and s.active(release_time)
            ),
            None,
        )
        for _ in range(40):
            anchored = surge is not None and self._rng.random() < surge.attraction
            if anchored and surge.direction == "outbound":
                source = self._near_node(surge.center)
                target_time = self._rng.lognormvariate(
                    workload.trip_log_mean, workload.trip_log_sigma
                )
                destination = self._node_at_travel_time(source, target_time)
            elif anchored:
                source = self._sample_source()
                destination = self._near_node(surge.center)
            else:
                source = self._sample_source()
                target_time = self._rng.lognormvariate(
                    workload.trip_log_mean, workload.trip_log_sigma
                )
                destination = self._node_at_travel_time(source, target_time)
            if destination == source:
                continue
            direct = self._oracle.cost(source, destination)
            if math.isfinite(direct) and direct > 0:
                return source, destination, direct
        raise WorkloadError(
            "failed to sample a reachable trip; the road network may be disconnected"
        )

    def _node_at_travel_time(self, source: int, target_time: float) -> int:
        """A node whose distance from ``source`` approximates ``target_time``.

        Euclidean distance at the configured average driving speed is used as
        a proxy to avoid a shortest-path query per candidate; the true direct
        cost is computed once for the chosen destination.
        """
        speed = 10.0
        target_distance = target_time * speed
        sx, sy = self._network.position(source)
        angle = self._rng.uniform(0.0, 2.0 * math.pi)
        tx = sx + target_distance * math.cos(angle)
        ty = sy + target_distance * math.sin(angle)
        return self._network.nearest_node(tx, ty)


def generate_vehicles(
    network: RoadNetwork,
    workload: WorkloadConfig,
    simulation: SimulationConfig,
    *,
    seed_offset: int = 1000,
) -> list[Vehicle]:
    """Create the fleet: random initial positions, configurable capacities.

    When ``workload.capacity_sigma`` is positive, vehicle capacities follow a
    normal distribution with mean ``simulation.capacity`` (Appendix C of the
    paper); otherwise every vehicle gets the same capacity.
    """
    rng = random.Random(workload.seed + seed_offset)
    nodes = list(network.nodes())
    if not nodes:
        raise WorkloadError("cannot place vehicles on an empty network")
    vehicles: list[Vehicle] = []
    for vehicle_id in range(workload.num_vehicles):
        location = rng.choice(nodes)
        if workload.capacity_sigma > 0:
            capacity = int(round(rng.gauss(simulation.capacity, workload.capacity_sigma)))
            capacity = max(1, min(capacity, 8))
        else:
            capacity = simulation.capacity
        vehicles.append(Vehicle(vehicle_id=vehicle_id, location=location, capacity=capacity))
    return vehicles
