"""Synthetic workloads standing in for the Didi / NYC TLC / Cainiao traces.

Each workload bundles a road network, a distance oracle, a fleet of vehicles
and a stream of requests whose statistical shape matches the corresponding
real dataset: log-normal trip lengths (the paper fits a log-normal to both
cities), clustered origins/destinations around demand hotspots, and Poisson
request arrivals at the per-second rates reported in Section V-A.
"""

from .requests_gen import RequestGenerator, generate_vehicles
from .presets import Workload, make_workload, WORKLOAD_PRESETS
from .trace import load_requests_csv, save_requests_csv

__all__ = [
    "RequestGenerator",
    "generate_vehicles",
    "Workload",
    "make_workload",
    "WORKLOAD_PRESETS",
    "load_requests_csv",
    "save_requests_csv",
]
