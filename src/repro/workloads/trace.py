"""Reading and writing request traces as CSV files.

Real traces (NYC TLC exports, Didi GAIA extracts) can be converted to the
same five-column schema and fed to the simulator; the synthetic generators
use the identical representation so everything downstream is agnostic to the
trace's origin.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from collections.abc import Iterable, Sequence

from ..exceptions import WorkloadError
from ..model.request import Request

#: Column order of the CSV schema.
CSV_COLUMNS = (
    "request_id",
    "source",
    "destination",
    "riders",
    "release_time",
    "deadline",
    "direct_cost",
    "max_wait",
)


def save_requests_csv(requests: Sequence[Request], path: str | Path) -> None:
    """Write a request trace to ``path`` using the canonical CSV schema."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(CSV_COLUMNS)
        for request in requests:
            writer.writerow(
                [
                    request.request_id,
                    request.source,
                    request.destination,
                    request.riders,
                    f"{request.release_time:.3f}",
                    f"{request.deadline:.3f}",
                    f"{request.direct_cost:.3f}",
                    "inf" if math.isinf(request.max_wait) else f"{request.max_wait:.3f}",
                ]
            )


def load_requests_csv(path: str | Path) -> list[Request]:
    """Load a request trace previously written by :func:`save_requests_csv`."""
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"trace file {path} does not exist")
    requests: list[Request] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(CSV_COLUMNS) - set(reader.fieldnames or ())
        if missing:
            raise WorkloadError(f"trace file {path} is missing columns {sorted(missing)}")
        for row in reader:
            requests.append(
                Request(
                    request_id=int(row["request_id"]),
                    source=int(row["source"]),
                    destination=int(row["destination"]),
                    riders=int(row["riders"]),
                    release_time=float(row["release_time"]),
                    deadline=float(row["deadline"]),
                    direct_cost=float(row["direct_cost"]),
                    max_wait=float(row["max_wait"]),
                )
            )
    requests.sort(key=lambda r: (r.release_time, r.request_id))
    return requests


def iter_release_times(requests: Iterable[Request]) -> list[float]:
    """Release times of a trace (helper for arrival-rate analysis)."""
    return [request.release_time for request in requests]
